"""Multi-core cluster tests: SPMD execution, mhartid, barrier."""

import numpy as np
import pytest

from repro.core import Cluster

OUT = 0x8000


def test_mhartid_distinguishes_cores():
    prog = f"""
    csrr a0, mhartid
    li t6, {OUT}
    slli a1, a0, 2
    add t6, t6, a1
    addi a0, a0, 100
    sw a0, 0(t6)
    ebreak
"""
    cluster = Cluster(prog, num_cores=4)
    cluster.run()
    for hart in range(4):
        assert cluster.mem.read_u32(OUT + 4 * hart) == 100 + hart


def test_spmd_fp_work_split():
    # Each core squares its own slice of 8 doubles.
    prog = f"""
    csrr a0, mhartid
    slli a1, a0, 6          # hart * 8 doubles * 8 bytes
    li a2, 0x2000
    add a2, a2, a1
    li a3, {OUT}
    add a3, a3, a1
    li t3, 0
loop:
    fld fa0, 0(a2)
    fmul.d fa1, fa0, fa0
    fsd fa1, 0(a3)
    addi a2, a2, 8
    addi a3, a3, 8
    addi t3, t3, 1
    li t4, 8
    bne t3, t4, loop
    ebreak
"""
    cluster = Cluster(prog, num_cores=2)
    data = np.arange(16, dtype=np.float64) + 1
    cluster.load_f64(0x2000, data)
    cluster.run()
    out = cluster.read_f64(OUT, (16,))
    assert np.array_equal(out, data * data)


def test_barrier_synchronizes():
    # Core 0 writes a flag *before* the barrier; core 1 reads it *after*
    # the barrier -- it must observe the value regardless of skew.
    prog = f"""
    csrr a0, mhartid
    li t6, {OUT}
    bnez a0, other
    # hart 0: dawdle, then publish, then barrier.
    li t0, 0
delay:
    addi t0, t0, 1
    li t1, 40
    bne t0, t1, delay
    li a1, 777
    sw a1, 0(t6)
    csrrwi x0, 0x7C6, 1
    ebreak
other:
    csrrwi x0, 0x7C6, 1
    lw a2, 0(t6)
    sw a2, 4(t6)
    ebreak
"""
    cluster = Cluster(prog, num_cores=2)
    cluster.run()
    assert cluster.mem.read_u32(OUT + 4) == 777
    assert cluster.perf.value("barriers") == 1
    assert cluster.perf.value("int_barrier_stalls") > 10


def test_barrier_with_halted_core_does_not_deadlock():
    # Hart 1 halts immediately; hart 0's barrier must still open.
    prog = """
    csrr a0, mhartid
    bnez a0, done
    csrrwi x0, 0x7C6, 1
done:
    ebreak
"""
    cluster = Cluster(prog, num_cores=2)
    cluster.run(max_cycles=1000)
    assert cluster.done


def test_parallel_speedup_on_fp_kernel():
    # The same total FP work split across 4 cores finishes much faster
    # (cores contend only on TCDM banks).
    def make(num_cores, per_core):
        prog = f"""
    csrr a0, mhartid
    li a2, 0x2000
    fld fa0, 0(a2)
    li t2, {per_core - 1}
    frep.o t2, 3
    fmul.d fa1, fa0, fa0
    fmul.d fa2, fa0, fa0
    fmul.d fa3, fa0, fa0
    fmul.d fa4, fa0, fa0
    ebreak
"""
        cluster = Cluster(prog, num_cores=num_cores)
        cluster.mem.write_f64(0x2000, 1.0)
        cluster.run()
        return cluster

    total_groups = 64
    single = make(1, total_groups)
    quad = make(4, total_groups // 4)
    assert quad.perf.value("fpu_compute_ops") == \
        single.perf.value("fpu_compute_ops")
    assert quad.cycle < single.cycle * 0.45


def test_single_core_unaffected():
    cluster = Cluster("ebreak")
    assert cluster.num_cores == 1
    assert cluster.fp is cluster.fps[0]
    cluster.run()


def test_bad_core_count():
    with pytest.raises(ValueError, match="num_cores"):
        Cluster("ebreak", num_cores=0)
