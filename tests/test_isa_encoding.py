"""Binary encode/decode tests, including known golden encodings."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.encoding import (
    DecodeError,
    EncodingError,
    decode,
    encode,
    pack_frep,
    unpack_frep,
)
from repro.isa.instructions import Instr


def _enc(text: str) -> int:
    prog = assemble(text)
    assert len(prog) == 1
    return encode(prog.instrs[0])


# Golden words cross-checked against the RISC-V spec encodings.
GOLDEN = [
    ("addi t0, zero, 8", 0x00800293),
    ("add a0, a1, a2", 0x00C58533),
    ("sub a0, a1, a2", 0x40C58533),
    ("lui t2, 16", 0x000103B7),
    ("lw a0, 4(sp)", 0x00412503),
    ("sw a0, 8(sp)", 0x00A12423),
    ("jalr x0, ra, 0", 0x00008067),
    ("ebreak", 0x00100073),
    ("ecall", 0x00000073),
    ("fadd.d ft3, ft0, ft1", 0x021071D3),
    ("fmul.d ft2, ft3, fa0", 0x12A1F153),
    ("fmadd.d ft3, ft0, ft4, ft3", 0x1A4071C3),
    ("fld ft5, -16(a2)", 0xFF063287),
    ("fsd ft3, 8(sp)", 0x00313427),
    ("csrrs zero, 0x7C3, t0", 0x7C32A073),
]


@pytest.mark.parametrize("text,word", GOLDEN)
def test_golden_encodings(text, word):
    assert _enc(text) == word


@pytest.mark.parametrize("text,word", GOLDEN)
def test_golden_decodings(text, word):
    instr = decode(word)
    assert encode(instr) == word


def test_branch_offset_encoding():
    # Backward branch by -16 bytes (the paper's Fig. 1 style loop).
    word = _enc("bne a0, a1, -16")
    instr = decode(word)
    assert instr.mnemonic == "bne"
    assert instr.imm == -16


def test_jal_offset_roundtrip():
    for offset in (-1048576, -4, 0, 4, 2048, 1048574):
        instr = Instr("jal", rd=1, imm=offset)
        assert decode(encode(instr)).imm == offset


def test_branch_offset_range_checked():
    with pytest.raises(EncodingError):
        encode(Instr("beq", rs1=1, rs2=2, imm=5000))
    with pytest.raises(EncodingError):
        encode(Instr("beq", rs1=1, rs2=2, imm=3))  # odd offset


def test_immediate_range_checked():
    with pytest.raises(EncodingError):
        encode(Instr("addi", rd=1, rs1=1, imm=3000))
    with pytest.raises(EncodingError):
        encode(Instr("slli", rd=1, rs1=1, imm=32))


def test_register_range_checked():
    with pytest.raises(EncodingError):
        encode(Instr("add", rd=32, rs1=0, rs2=0))


def test_unknown_opcode_raises():
    with pytest.raises(DecodeError):
        decode(0xFFFFFFFF)
    with pytest.raises(DecodeError):
        decode(0x0000007F)


def test_frep_packing_roundtrip():
    for max_inst in (0, 7, 15):
        for smax in (0, 3):
            for smask in (0, 9):
                imm = pack_frep(max_inst, smax, smask)
                assert unpack_frep(imm) == (max_inst, smax, smask)


def test_frep_packing_range():
    with pytest.raises(EncodingError):
        pack_frep(16)
    with pytest.raises(EncodingError):
        pack_frep(0, 16)
    with pytest.raises(EncodingError):
        pack_frep(0, 0, 16)


def test_frep_encoding_roundtrip():
    word = _enc("frep.o t2, 7, 3, 5")
    instr = decode(word)
    assert instr.mnemonic == "frep.o"
    assert unpack_frep(instr.imm) == (7, 3, 5)


def test_dma_encodings_roundtrip():
    for text in ("dmsrc t0", "dmdst a1", "dmrep t2", "dmstr t0, t1",
                 "dmcpy a0, t1", "dmstat a1"):
        prog = assemble(text)
        word = encode(prog.instrs[0])
        back = decode(word)
        assert back.mnemonic == prog.instrs[0].mnemonic
        assert encode(back) == word


def test_dma_encodings_all_distinct():
    words = set()
    for text in ("dmsrc t0", "dmdst t0", "dmrep t0", "dmstr t0, t0",
                 "dmcpy t0, t0", "dmstat t0"):
        words.add(encode(assemble(text).instrs[0]))
    assert len(words) == 6


def test_scfg_encodings_distinct():
    w_w = _enc("scfgw t0, t1")
    w_r = _enc("scfgr t0, t1")
    assert w_w != w_r
    assert decode(w_w).mnemonic == "scfgw"
    assert decode(w_r).mnemonic == "scfgr"


def test_store_negative_offset():
    word = _enc("fsd ft0, -8(a0)")
    assert decode(word).imm == -8


def test_fr4_rs3_field():
    instr = decode(_enc("fnmadd.d ft1, ft2, ft3, ft4"))
    assert (instr.rd, instr.rs1, instr.rs2, instr.rs3) == (1, 2, 3, 4)
