"""Area model tests: the <2% overhead claim."""

from repro.energy.area import AreaModel


def test_overhead_under_paper_bound():
    model = AreaModel()
    # The paper reports <2% cell-area increase.
    assert model.overhead_core_percent < 2.0
    assert model.overhead_cluster_percent < model.overhead_core_percent


def test_chaining_parts_itemized():
    model = AreaModel()
    assert model.chaining_kge == sum(model.chaining_parts_kge.values())
    assert set(model.chaining_parts_kge) == {
        "chain_mask_csr", "valid_bits_and_control",
        "writeback_backpressure", "issue_rule_changes",
    }


def test_breakdown_complete():
    model = AreaModel()
    breakdown = model.breakdown()
    assert "fpu" in breakdown
    assert "chaining_extension" in breakdown
    assert breakdown["chaining_extension"] == model.chaining_kge


def test_core_complex_dominated_by_fpu():
    # Sanity of the figures: on Snitch-class cores the FPU is the
    # largest logic block.
    model = AreaModel()
    assert model.components_kge["fpu"] == max(model.components_kge.values())
