"""Runner semantics: serial/parallel determinism, isolation, overrides,
and the aggregation helpers over campaign outcomes."""

import pytest

from repro.core.config import CoreConfig
from repro.eval.runner import run_stencil_variant
from repro.isa.instructions import InstrClass
from repro.kernels.variants import Variant
from repro.sweep import (
    SweepRunner,
    SweepSpec,
    apply_overrides,
    best_points,
    by_kernel_variant,
    make_point,
    preset_points,
    speedup_vs_baseline,
    summary_rows,
)

FAST_POINTS = [
    make_point("vecop", "baseline", n=16),
    make_point("vecop", "chaining", n=16),
    make_point("box3d1r", "Base", grid=(2, 3, 8)),
    make_point("box3d1r", "Chaining+", grid=(2, 3, 8)),
]


def _fingerprint(campaign):
    return [(o.point, o.status, o.result.cycles, o.result.region_cycles,
             o.result.fpu_utilization, o.result.energy.total_pj)
            for o in campaign]


def test_serial_matches_direct_eval_runner():
    campaign = SweepRunner(workers=0).run(
        [make_point("box3d1r", "Chaining+", grid=(2, 3, 8))])
    direct = run_stencil_variant(
        "box3d1r", Variant.CHAINING_PLUS,
        grid=campaign.outcomes[0].point.grid3d())
    res = campaign.outcomes[0].result
    assert res.cycles == direct.cycles
    assert res.fpu_utilization == direct.fpu_utilization
    assert res.energy.total_pj == direct.energy.total_pj


def test_parallel_matches_serial():
    serial = SweepRunner(workers=0).run(FAST_POINTS)
    parallel = SweepRunner(workers=2).run(FAST_POINTS)
    assert all(o.ok for o in serial)
    assert _fingerprint(serial) == _fingerprint(parallel)


def test_outcomes_preserve_point_order():
    campaign = SweepRunner(workers=2).run(FAST_POINTS)
    assert [o.point for o in campaign] == FAST_POINTS


def test_error_isolation_keeps_campaign_alive():
    points = [
        make_point("vecop", "chaining", n=16),
        make_point("vecop", "chaining", n=17),  # not a depth+1 multiple
        make_point("vecop", "baseline", n=16),
    ]
    campaign = SweepRunner(workers=0).run(points)
    statuses = [o.status for o in campaign]
    assert statuses == ["ok", "error", "ok"]
    bad = campaign.outcomes[1]
    assert "multiple" in bad.error  # the builder's message, with traceback
    with pytest.raises(RuntimeError, match="n=17"):
        campaign.raise_on_failure()


def test_error_isolation_parallel():
    points = [
        make_point("vecop", "chaining", n=16),
        make_point("box3d1r", "Base", grid=(2, 3, 8),
                   overrides={"fpu_pipe_depth": -1}),
    ]
    campaign = SweepRunner(workers=2).run(points)
    assert [o.status for o in campaign] == ["ok", "error"]
    assert "fpu_pipe_depth" in campaign.outcomes[1].error


def test_timeout_is_captured():
    # A microscopic budget trips before any simulation can finish.
    campaign = SweepRunner(workers=2, timeout=1e-6).run(
        [make_point("vecop", "baseline", n=16)])
    assert campaign.outcomes[0].status == "timeout"
    assert "budget" in campaign.outcomes[0].error


def test_timeout_budget_excludes_queue_wait():
    # Two workers, three points: both slow default-grid stencils blow
    # their budget while the fast vecop sits queued behind them.  The
    # queued point's clock must not start until it actually runs, so it
    # still completes instead of being falsely charged for the wait.
    points = [
        make_point("box3d1r", "Chaining+"),  # default grid, ~2s
        make_point("j3d27pt", "Chaining+"),  # default grid, ~2s
        make_point("vecop", "baseline", n=16),
    ]
    campaign = SweepRunner(workers=2, timeout=0.3).run(points)
    assert [o.status for o in campaign] == ["timeout", "timeout", "ok"]


def test_apply_overrides():
    assert apply_overrides(None, ()) is None  # seed-identical fast path
    cfg = apply_overrides(None, (("fpu_depth", 5), ("tcdm_banks", 16)))
    assert cfg.fpu_pipe_depth == 5
    assert cfg.fpu_latency[InstrClass.FP_FMA] == 5
    assert cfg.fpu_latency[InstrClass.FP_DIV] == 11  # untouched
    assert cfg.tcdm_banks == 16
    # The base config is never mutated.
    base = CoreConfig()
    derived = apply_overrides(base, (("fpu_depth", 2),))
    assert base.fpu_pipe_depth == 3
    assert derived.fpu_pipe_depth == 2


def test_depth_override_changes_behaviour():
    deep = make_point("vecop", "baseline", n=28,
                      overrides={"fpu_depth": 6})
    shallow = make_point("vecop", "baseline", n=28,
                         overrides={"fpu_depth": 1})
    campaign = SweepRunner(workers=0).run([deep, shallow])
    campaign.raise_on_failure()
    by_point = campaign.results()
    assert by_point[deep].fpu_utilization < \
        by_point[shallow].fpu_utilization


def test_presets_expand():
    for name in ("fig3", "smoke", "depth-ablation", "banking"):
        description, points = preset_points(name)
        assert description
        assert points
        assert len(points) == len(set(points))
    _, smoke = preset_points("smoke")
    assert len(smoke) >= 24
    with pytest.raises(ValueError, match="unknown preset"):
        preset_points("nope")


def test_spec_input_accepted_directly():
    spec = SweepSpec(kernels=("vecop",), variants=("baseline",),
                     ns=(16, 32))
    campaign = SweepRunner(workers=0).run(spec)
    assert len(campaign) == 2


def test_aggregation_helpers():
    points = [make_point(kernel, variant, grid=(2, 3, 8))
              for kernel in ("box3d1r", "j2d5pt")
              for variant in ("Base", "Chaining+")]
    campaign = SweepRunner(workers=0).run(points)
    campaign.raise_on_failure()

    groups = by_kernel_variant(campaign)
    assert len(groups) == 4
    assert all(len(members) == 1 for members in groups.values())

    table = speedup_vs_baseline(campaign, "Base", metric="region_cycles")
    assert set(table) == {"Chaining+"}
    entry = table["Chaining+"]
    assert len(entry["ratios"]) == 2
    assert entry["geomean"] >= 1.0  # chaining never loses cycles

    best = best_points(campaign, metric="fpu_utilization")
    assert set(best) == {"box3d1r", "j2d5pt"}
    assert all(o.point.variant == "Chaining+" for o in best.values())

    rows = summary_rows(campaign)
    assert len(rows) == 4
    assert all(row[1] == "ok" for row in rows)


def test_engine_selection_is_bit_identical():
    """`repro sweep --engine {fast,scalar}` must not change a single
    reported number -- only the wall clock."""
    point = make_point("vecop", "chaining", n=256, loop_mode="frep")
    results = {
        engine: SweepRunner(workers=0, engine=engine).run([point])
        .outcomes[0].result
        for engine in ("scalar", "fast")
    }
    a, b = results["scalar"], results["fast"]
    assert a.cycles == b.cycles
    assert a.region_cycles == b.region_cycles
    assert a.fpu_utilization == b.fpu_utilization
    assert a.stalls == b.stalls
    assert a.energy.total_pj == b.energy.total_pj


def test_engine_override_axis():
    point = make_point("vecop", "chaining", n=64,
                       overrides={"engine": "scalar"})
    campaign = SweepRunner(workers=0).run([point])
    campaign.raise_on_failure()
    assert campaign.outcomes[0].result.correct

    import pytest
    with pytest.raises(ValueError, match="engine"):
        make_point("vecop", "chaining", n=64,
                   overrides={"engine": "warp"})


def test_runner_rejects_unknown_engine():
    import pytest
    with pytest.raises(ValueError, match="engine"):
        SweepRunner(engine="warp")
