"""Property-based encode/decode round-trip over the full spec table."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.disassembler import format_instr
from repro.isa.encoding import decode, encode, pack_frep
from repro.isa.instructions import Format, Instr, SPEC_TABLE

reg = st.integers(0, 31)
imm12 = st.integers(-2048, 2047)
branch_off = st.integers(-2048, 2047).map(lambda v: v * 2)
jump_off = st.integers(-(1 << 19), (1 << 19) - 1).map(lambda v: v * 2)
uimm20 = st.integers(0, (1 << 20) - 1)
shamt = st.integers(0, 31)
csr_addr = st.integers(0, 0xFFF)
uimm5 = st.integers(0, 31)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(sorted(SPEC_TABLE)))
    spec = SPEC_TABLE[mnemonic]
    instr = Instr(mnemonic)
    fmt = spec.fmt
    if fmt in (Format.R, Format.FR):
        instr.rd, instr.rs1, instr.rs2 = draw(reg), draw(reg), draw(reg)
    elif fmt == Format.FR1:
        instr.rd, instr.rs1 = draw(reg), draw(reg)
    elif fmt == Format.FR4:
        instr.rd, instr.rs1 = draw(reg), draw(reg)
        instr.rs2, instr.rs3 = draw(reg), draw(reg)
    elif fmt in (Format.I, Format.LOAD, Format.FLOAD, Format.JR):
        instr.rd, instr.rs1, instr.imm = draw(reg), draw(reg), draw(imm12)
    elif fmt == Format.SHIFT:
        instr.rd, instr.rs1, instr.imm = draw(reg), draw(reg), draw(shamt)
    elif fmt in (Format.S, Format.FSTORE):
        instr.rs1, instr.rs2, instr.imm = draw(reg), draw(reg), draw(imm12)
    elif fmt == Format.B:
        instr.rs1, instr.rs2 = draw(reg), draw(reg)
        instr.imm = draw(branch_off)
    elif fmt == Format.U:
        instr.rd, instr.imm = draw(reg), draw(uimm20)
    elif fmt == Format.J:
        instr.rd, instr.imm = draw(reg), draw(jump_off)
    elif fmt == Format.CSR:
        instr.rd, instr.rs1 = draw(reg), draw(reg)
        instr.csr = draw(csr_addr)
    elif fmt == Format.CSRI:
        instr.rd, instr.imm = draw(reg), draw(uimm5)
        instr.csr = draw(csr_addr)
    elif fmt == Format.FREP:
        instr.rs1 = draw(reg)
        instr.imm = pack_frep(draw(st.integers(0, 15)),
                              draw(st.integers(0, 15)),
                              draw(st.integers(0, 15)))
    elif fmt == Format.SCFGW:
        instr.rs1, instr.rs2 = draw(reg), draw(reg)
    elif fmt == Format.SCFGR:
        instr.rd, instr.rs1 = draw(reg), draw(reg)
    return instr


@given(instructions())
@settings(max_examples=400)
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < 1 << 32
    back = decode(word)
    assert back.mnemonic == instr.mnemonic
    assert format_instr(back) == format_instr(instr)


@given(instructions())
@settings(max_examples=200)
def test_decode_is_deterministic(instr):
    word = encode(instr)
    assert encode(decode(word)) == word
