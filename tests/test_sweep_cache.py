"""Content-addressed cache: keys, JSONL round-trip, hit/miss behavior,
sharded layout, migration, store verification, and the failure log."""

import json

import pytest

from repro import __version__
from repro.core.config import CoreConfig
from repro.sweep.cache import (
    SHARD_PREFIX_LEN,
    ResultCache,
    point_key,
    result_from_record,
    result_to_record,
)
from repro.sweep.runner import SweepRunner, execute_point
from repro.sweep.spec import make_point

POINT = make_point("vecop", "chaining", n=16)


def test_point_key_stability_and_sensitivity():
    key = point_key(POINT, __version__)
    assert key == point_key(POINT, __version__)
    assert len(key) == 64
    # Any ingredient change moves the address.
    assert key != point_key(make_point("vecop", "chaining", n=32),
                            __version__)
    assert key != point_key(POINT, "0.0.0")
    assert key != point_key(POINT, __version__, base_cfg=CoreConfig())


def test_result_record_roundtrip_is_exact():
    result = execute_point(POINT)
    record = result_to_record(result)
    json.dumps(record)  # must be JSON-clean
    again = result_from_record(record)
    assert again.cycles == result.cycles
    assert again.region_cycles == result.region_cycles
    assert again.fpu_utilization == result.fpu_utilization
    assert again.energy.total_pj == result.energy.total_pj
    assert again.energy.breakdown == result.energy.breakdown
    assert again.power_mw == result.power_mw
    assert again.gflops_per_watt == result.gflops_per_watt
    assert again.stalls == result.stalls


def test_cache_persists_across_instances(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    assert cache.get(key) is None
    result = execute_point(POINT)
    cache.put(key, POINT, result, seconds=0.1, version=__version__)
    assert key in cache

    reopened = ResultCache(tmp_path / "c")
    assert len(reopened) == 1
    assert reopened.get(key).cycles == result.cycles
    record = reopened.get_record(key)
    assert record["version"] == __version__
    assert record["point"] == POINT.canonical()


def test_cache_ignores_torn_tail_line(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put(key, POINT, execute_point(POINT), 0.1, __version__)
    with open(cache.path, "a") as handle:
        handle.write('{"key": "partial...')  # killed mid-append
    reopened = ResultCache(tmp_path / "c")
    assert len(reopened) == 1


def test_progress_counter_increments_over_cache_hits(tmp_path):
    points = [make_point("vecop", "baseline", n=n) for n in (16, 32, 48)]
    SweepRunner(cache=tmp_path / "c", workers=0).run(points)
    calls = []
    SweepRunner(cache=tmp_path / "c", workers=0).run(
        points, progress=lambda o, done, total: calls.append((done, total)))
    assert calls == [(1, 3), (2, 3), (3, 3)]


def test_runner_hits_cache_across_invocations(tmp_path):
    points = [make_point("vecop", variant, n=n)
              for variant in ("baseline", "chaining")
              for n in (16, 32)]
    cold = SweepRunner(cache=tmp_path / "c", workers=0).run(points)
    assert cold.cached_count == 0
    assert all(o.ok for o in cold)

    warm = SweepRunner(cache=tmp_path / "c", workers=0).run(points)
    assert warm.cached_count == len(points)
    assert warm.hit_rate == 1.0
    for a, b in zip(cold, warm):
        assert b.cached and not a.cached
        assert a.point == b.point
        assert a.result.region_cycles == b.result.region_cycles
        assert a.result.fpu_utilization == b.result.fpu_utilization

    # Extending the sweep only simulates the new points.
    extended = points + [make_point("vecop", "unrolled", n=16)]
    third = SweepRunner(cache=tmp_path / "c", workers=0).run(extended)
    assert third.cached_count == len(points)
    assert len(third) == len(points) + 1


def test_base_cfg_partitions_the_cache(tmp_path):
    cache_dir = tmp_path / "c"
    plain = SweepRunner(cache=cache_dir, workers=0).run([POINT])
    tweaked = SweepRunner(cache=cache_dir, workers=0,
                          base_cfg=CoreConfig(fp_queue_depth=2)) \
        .run([POINT])
    assert plain.cached_count == 0
    assert tweaked.cached_count == 0  # different key despite same point
    assert len(ResultCache(cache_dir)) == 2


def test_failures_are_not_cached(tmp_path):
    bad = make_point("box3d1r", "Base", grid=(2, 3, 8),
                     overrides={"fpu_pipe_depth": -1})  # fails validate()
    first = SweepRunner(cache=tmp_path / "c", workers=0).run([bad])
    assert first.outcomes[0].status == "error"
    second = SweepRunner(cache=tmp_path / "c", workers=0).run([bad])
    assert second.cached_count == 0  # retried, not replayed


def test_point_key_includes_system_axes():
    """Multi-cluster axes partition the cache: without ``system`` in the
    canonical payload, a 1-cluster and a 4-cluster run of the same
    kernel/grid would collide on one key and the cache would serve
    single-cluster results for multi-cluster points."""
    base = make_point("box3d1r", "Chaining+", grid=(4, 4, 8))
    multi = make_point("box3d1r", "Chaining+", grid=(4, 4, 8),
                       system={"num_clusters": 4, "iters": 2})
    assert base != multi
    assert point_key(base, __version__) != point_key(multi, __version__)
    # Interconnect knobs are axes of their own.
    tuned = make_point("box3d1r", "Chaining+", grid=(4, 4, 8),
                       system={"num_clusters": 4, "iters": 2,
                               "gmem_latency": 100})
    assert point_key(tuned, __version__) != point_key(multi, __version__)
    # Demonstrate the collision the fix prevents: strip the system axes
    # from the canonical payloads (the pre-fix key ingredients) and the
    # two distinct experiments become indistinguishable.
    pre_fix = {k: v for k, v in base.canonical().items() if k != "system"}
    pre_fix_multi = {k: v for k, v in multi.canonical().items()
                     if k != "system"}
    assert pre_fix == pre_fix_multi


def test_system_axes_round_trip_and_cache_partition(tmp_path):
    """End to end: a multi-cluster point simulates, caches under its own
    key, replays from cache, and never hits the single-cluster entry."""
    from repro.sweep.spec import Point

    single = make_point("box3d1r", "Chaining+", grid=(2, 4, 8))
    multi = make_point("box3d1r", "Chaining+", grid=(2, 4, 8),
                       system={"num_clusters": 2})
    assert Point.from_canonical(multi.canonical()) == multi
    assert "num_clusters=2" in multi.label

    runner = SweepRunner(cache=tmp_path / "c", workers=0)
    cold = runner.run([single, multi])
    assert all(o.ok for o in cold) and cold.cached_count == 0
    results = {o.point: o.result for o in cold}
    assert results[multi].meta["num_clusters"] == 2
    assert "per_cluster_cycles" in results[multi].meta
    assert "num_clusters" not in results[single].meta

    warm = SweepRunner(cache=tmp_path / "c", workers=0) \
        .run([single, multi])
    assert warm.cached_count == 2
    for o in warm:
        # The --json record carries the system axes.
        assert "system" in o.record()["point"]


def test_point_key_engine_sensitivity():
    """The engine choice is part of the cache key (and defaults to the
    base config's own engine selection)."""
    key_auto = point_key(POINT, __version__)
    assert key_auto == point_key(POINT, __version__, engine="auto")
    assert key_auto != point_key(POINT, __version__, engine="fast")
    assert key_auto != point_key(POINT, __version__, engine="scalar")
    cfg = CoreConfig(engine="scalar")
    assert point_key(POINT, __version__, base_cfg=cfg) != \
        point_key(POINT, __version__, base_cfg=cfg, engine="fast")


def test_analytical_keys_collide_with_no_cycle_engine():
    """Regression: an analytical estimate must never replay as (or be
    shadowed by) a cycle-accurate record -- its key is distinct from
    every cycle engine's key, under default and overridden configs."""
    from repro.core.config import ENGINES

    for base_cfg in (None, CoreConfig(fpu_pipe_depth=4)):
        keys = {engine: point_key(POINT, __version__, base_cfg=base_cfg,
                                  engine=engine)
                for engine in ENGINES}
        analytical = keys.pop("analytical")
        assert analytical not in keys.values()
        # And the no-engine default resolves to a cycle key too.
        assert analytical != point_key(POINT, __version__,
                                       base_cfg=base_cfg)


# -- sharded layout -------------------------------------------------------


def test_new_store_is_sharded_and_files_match_key_prefixes(tmp_path):
    cache = ResultCache(tmp_path / "c")
    assert cache.layout == "sharded"
    points = [make_point("vecop", "baseline", n=n) for n in (16, 32, 48)]
    result = execute_point(points[0])
    for point in points:
        key = point_key(point, __version__)
        cache.put(key, point, result, 0.0, __version__)
        shard = tmp_path / "c" / "shards" / \
            f"{key[:SHARD_PREFIX_LEN]}.jsonl"
        assert shard.exists()
        assert json.loads(shard.read_text().splitlines()[-1])["key"] == key
    assert not (tmp_path / "c" / "results.jsonl").exists()
    assert len(ResultCache(tmp_path / "c")) == 3


def test_existing_flat_store_stays_flat_until_migrated(tmp_path):
    flat = ResultCache(tmp_path / "c", layout="flat")
    assert flat.layout == "flat"
    key = point_key(POINT, __version__)
    flat.put(key, POINT, execute_point(POINT), 0.0, __version__)
    assert (tmp_path / "c" / "results.jsonl").exists()

    # auto-detection keeps appending to the flat file.
    auto = ResultCache(tmp_path / "c")
    assert auto.layout == "flat"
    other = make_point("vecop", "baseline", n=16)
    auto.put(point_key(other, __version__), other,
             execute_point(other), 0.0, __version__)
    assert not (tmp_path / "c" / "shards").exists()
    assert len(ResultCache(tmp_path / "c")) == 2


def test_unknown_layout_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown cache layout"):
        ResultCache(tmp_path / "c", layout="banked")


def test_migrate_moves_every_record_and_is_one_way(tmp_path):
    flat = ResultCache(tmp_path / "c", layout="flat")
    points = [make_point("vecop", "baseline", n=n) for n in (16, 32, 48)]
    result = execute_point(points[0])
    records = {}
    for point in points:
        key = point_key(point, __version__)
        flat.put(key, point, result, 0.0, __version__)
        records[key] = flat.get_record(key)

    stats = flat.migrate()
    assert stats["migrated"] == 3 and stats["corrupt_lines"] == 0
    assert flat.layout == "sharded"
    assert not (tmp_path / "c" / "results.jsonl").exists()

    migrated = ResultCache(tmp_path / "c")
    assert migrated.layout == "sharded"
    assert {r["key"]: r for r in migrated.records()} == records
    # Idempotent: nothing left to migrate.
    assert migrated.migrate()["migrated"] == 0


def test_half_migrated_store_loses_nothing(tmp_path):
    """Loads always read flat + shards, so a store caught mid-migration
    (or written by mixed-era processes) still serves every record."""
    flat = ResultCache(tmp_path / "c", layout="flat")
    key_old = point_key(POINT, __version__)
    flat.put(key_old, POINT, execute_point(POINT), 0.0, __version__)
    sharded = ResultCache(tmp_path / "c", layout="sharded")
    other = make_point("vecop", "baseline", n=16)
    sharded.put(point_key(other, __version__), other,
                execute_point(other), 0.0, __version__)
    assert len(ResultCache(tmp_path / "c")) == 2


# -- verification ---------------------------------------------------------


def test_verify_clean_store(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(point_key(POINT, __version__), POINT,
              execute_point(POINT), 0.0, __version__)
    report = cache.verify()
    assert report["ok"]
    assert report["records"] == 1 and report["files"] == 1
    assert report["corrupt"] == [] and report["conflicts"] == []


def test_verify_flags_corrupt_conflicting_and_orphan_lines(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put(key, POINT, execute_point(POINT), 0.0, __version__)
    shard = cache._shard_path(key)
    record = json.loads(shard.read_text())
    with open(shard, "a") as handle:
        handle.write("not json at all\n")                  # corrupt
        handle.write(json.dumps(dict(record, seconds=9.9)) + "\n")
    orphan = dict(record, key="ffff" + record["key"][4:])
    cache._append(cache._shard_path(key), orphan)          # wrong shard

    report = ResultCache(tmp_path / "c").verify()
    assert not report["ok"]
    assert [c["line"] for c in report["corrupt"]] == [2]
    assert len(report["conflicts"]) == 1      # same key, differing line
    assert len(report["orphans"]) == 1
    assert report["duplicates"] == []


def test_verify_identical_duplicates_are_benign(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put(key, POINT, execute_point(POINT), 0.0, __version__)
    shard = cache._shard_path(key)
    line = shard.read_text()
    with open(shard, "a") as handle:
        handle.write(line)                   # racing cooperating writer
    report = ResultCache(tmp_path / "c").verify()
    assert report["ok"]                      # benign
    assert len(report["duplicates"]) == 1


def test_verify_flags_invalid_result_payloads(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache._append(cache._shard_path(key),
                  {"key": key, "version": __version__,
                   "point": POINT.canonical(), "seconds": 0.0,
                   "result": "not-a-dict"})
    report = ResultCache(tmp_path / "c").verify()
    assert not report["ok"]
    assert len(report["invalid"]) == 1


def test_corrupt_lines_counted_and_warned_once(tmp_path):
    cache = ResultCache(tmp_path / "c")
    cache.put(point_key(POINT, __version__), POINT,
              execute_point(POINT), 0.0, __version__)
    [shard] = (tmp_path / "c" / "shards").glob("*.jsonl")
    with open(shard, "a") as handle:
        handle.write('{"torn": \n{"no_key": 1}\n')
    with pytest.warns(UserWarning, match="2 malformed JSONL line"):
        reopened = ResultCache(tmp_path / "c")
    assert reopened.corrupt_lines == 2
    assert len(reopened) == 1                # good record still served


# -- failure log ----------------------------------------------------------


def test_put_failure_accumulates_attempts_across_reloads(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put_failure(key, POINT, "error", "boom", 0.1, __version__)
    assert cache.get_failure(key)["attempts"] == 1

    reopened = ResultCache(tmp_path / "c")
    reopened.put_failure(key, POINT, "error", "boom", 0.1, __version__)
    failure = ResultCache(tmp_path / "c").get_failure(key)
    assert failure["attempts"] == 2
    assert failure["status"] == "error"


def test_get_failure_hidden_once_key_succeeds(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put_failure(key, POINT, "timeout", None, 60.0, __version__)
    cache.put(key, POINT, execute_point(POINT), 0.0, __version__)
    assert cache.get_failure(key) is None
    assert ResultCache(tmp_path / "c").get_failure(key) is None


def test_failure_messages_are_truncated(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put_failure(key, POINT, "error", "x" * 10_000, 0.1, __version__)
    assert len(cache.get_failure(key)["error"]) == 2000


def test_runner_records_failures_for_audits(tmp_path):
    bad = make_point("box3d1r", "Base", grid=(2, 3, 8),
                     overrides={"fpu_pipe_depth": -1})  # fails validate()
    SweepRunner(cache=tmp_path / "c", workers=0).run([bad])
    SweepRunner(cache=tmp_path / "c", workers=0).run([bad])
    cache = ResultCache(tmp_path / "c")
    failure = cache.get_failure(point_key(bad, __version__))
    assert failure is not None
    assert failure["status"] == "error"
    assert failure["attempts"] == 2          # cumulative across runs
