"""Content-addressed cache: keys, JSONL round-trip, hit/miss behavior."""

import json

from repro import __version__
from repro.core.config import CoreConfig
from repro.sweep.cache import (
    ResultCache,
    point_key,
    result_from_record,
    result_to_record,
)
from repro.sweep.runner import SweepRunner, execute_point
from repro.sweep.spec import make_point

POINT = make_point("vecop", "chaining", n=16)


def test_point_key_stability_and_sensitivity():
    key = point_key(POINT, __version__)
    assert key == point_key(POINT, __version__)
    assert len(key) == 64
    # Any ingredient change moves the address.
    assert key != point_key(make_point("vecop", "chaining", n=32),
                            __version__)
    assert key != point_key(POINT, "0.0.0")
    assert key != point_key(POINT, __version__, base_cfg=CoreConfig())


def test_result_record_roundtrip_is_exact():
    result = execute_point(POINT)
    record = result_to_record(result)
    json.dumps(record)  # must be JSON-clean
    again = result_from_record(record)
    assert again.cycles == result.cycles
    assert again.region_cycles == result.region_cycles
    assert again.fpu_utilization == result.fpu_utilization
    assert again.energy.total_pj == result.energy.total_pj
    assert again.energy.breakdown == result.energy.breakdown
    assert again.power_mw == result.power_mw
    assert again.gflops_per_watt == result.gflops_per_watt
    assert again.stalls == result.stalls


def test_cache_persists_across_instances(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    assert cache.get(key) is None
    result = execute_point(POINT)
    cache.put(key, POINT, result, seconds=0.1, version=__version__)
    assert key in cache

    reopened = ResultCache(tmp_path / "c")
    assert len(reopened) == 1
    assert reopened.get(key).cycles == result.cycles
    record = reopened.get_record(key)
    assert record["version"] == __version__
    assert record["point"] == POINT.canonical()


def test_cache_ignores_torn_tail_line(tmp_path):
    cache = ResultCache(tmp_path / "c")
    key = point_key(POINT, __version__)
    cache.put(key, POINT, execute_point(POINT), 0.1, __version__)
    with open(cache.path, "a") as handle:
        handle.write('{"key": "partial...')  # killed mid-append
    reopened = ResultCache(tmp_path / "c")
    assert len(reopened) == 1


def test_progress_counter_increments_over_cache_hits(tmp_path):
    points = [make_point("vecop", "baseline", n=n) for n in (16, 32, 48)]
    SweepRunner(cache=tmp_path / "c", workers=0).run(points)
    calls = []
    SweepRunner(cache=tmp_path / "c", workers=0).run(
        points, progress=lambda o, done, total: calls.append((done, total)))
    assert calls == [(1, 3), (2, 3), (3, 3)]


def test_runner_hits_cache_across_invocations(tmp_path):
    points = [make_point("vecop", variant, n=n)
              for variant in ("baseline", "chaining")
              for n in (16, 32)]
    cold = SweepRunner(cache=tmp_path / "c", workers=0).run(points)
    assert cold.cached_count == 0
    assert all(o.ok for o in cold)

    warm = SweepRunner(cache=tmp_path / "c", workers=0).run(points)
    assert warm.cached_count == len(points)
    assert warm.hit_rate == 1.0
    for a, b in zip(cold, warm):
        assert b.cached and not a.cached
        assert a.point == b.point
        assert a.result.region_cycles == b.result.region_cycles
        assert a.result.fpu_utilization == b.result.fpu_utilization

    # Extending the sweep only simulates the new points.
    extended = points + [make_point("vecop", "unrolled", n=16)]
    third = SweepRunner(cache=tmp_path / "c", workers=0).run(extended)
    assert third.cached_count == len(points)
    assert len(third) == len(points) + 1


def test_base_cfg_partitions_the_cache(tmp_path):
    cache_dir = tmp_path / "c"
    plain = SweepRunner(cache=cache_dir, workers=0).run([POINT])
    tweaked = SweepRunner(cache=cache_dir, workers=0,
                          base_cfg=CoreConfig(fp_queue_depth=2)) \
        .run([POINT])
    assert plain.cached_count == 0
    assert tweaked.cached_count == 0  # different key despite same point
    assert len(ResultCache(cache_dir)) == 2


def test_failures_are_not_cached(tmp_path):
    bad = make_point("box3d1r", "Base", grid=(2, 3, 8),
                     overrides={"fpu_pipe_depth": -1})  # fails validate()
    first = SweepRunner(cache=tmp_path / "c", workers=0).run([bad])
    assert first.outcomes[0].status == "error"
    second = SweepRunner(cache=tmp_path / "c", workers=0).run([bad])
    assert second.cached_count == 0  # retried, not replayed


def test_point_key_includes_system_axes():
    """Multi-cluster axes partition the cache: without ``system`` in the
    canonical payload, a 1-cluster and a 4-cluster run of the same
    kernel/grid would collide on one key and the cache would serve
    single-cluster results for multi-cluster points."""
    base = make_point("box3d1r", "Chaining+", grid=(4, 4, 8))
    multi = make_point("box3d1r", "Chaining+", grid=(4, 4, 8),
                       system={"num_clusters": 4, "iters": 2})
    assert base != multi
    assert point_key(base, __version__) != point_key(multi, __version__)
    # Interconnect knobs are axes of their own.
    tuned = make_point("box3d1r", "Chaining+", grid=(4, 4, 8),
                       system={"num_clusters": 4, "iters": 2,
                               "gmem_latency": 100})
    assert point_key(tuned, __version__) != point_key(multi, __version__)
    # Demonstrate the collision the fix prevents: strip the system axes
    # from the canonical payloads (the pre-fix key ingredients) and the
    # two distinct experiments become indistinguishable.
    pre_fix = {k: v for k, v in base.canonical().items() if k != "system"}
    pre_fix_multi = {k: v for k, v in multi.canonical().items()
                     if k != "system"}
    assert pre_fix == pre_fix_multi


def test_system_axes_round_trip_and_cache_partition(tmp_path):
    """End to end: a multi-cluster point simulates, caches under its own
    key, replays from cache, and never hits the single-cluster entry."""
    from repro.sweep.spec import Point

    single = make_point("box3d1r", "Chaining+", grid=(2, 4, 8))
    multi = make_point("box3d1r", "Chaining+", grid=(2, 4, 8),
                       system={"num_clusters": 2})
    assert Point.from_canonical(multi.canonical()) == multi
    assert "num_clusters=2" in multi.label

    runner = SweepRunner(cache=tmp_path / "c", workers=0)
    cold = runner.run([single, multi])
    assert all(o.ok for o in cold) and cold.cached_count == 0
    results = {o.point: o.result for o in cold}
    assert results[multi].meta["num_clusters"] == 2
    assert "per_cluster_cycles" in results[multi].meta
    assert "num_clusters" not in results[single].meta

    warm = SweepRunner(cache=tmp_path / "c", workers=0) \
        .run([single, multi])
    assert warm.cached_count == 2
    for o in warm:
        # The --json record carries the system axes.
        assert "system" in o.record()["point"]


def test_point_key_engine_sensitivity():
    """The engine choice is part of the cache key (and defaults to the
    base config's own engine selection)."""
    key_auto = point_key(POINT, __version__)
    assert key_auto == point_key(POINT, __version__, engine="auto")
    assert key_auto != point_key(POINT, __version__, engine="fast")
    assert key_auto != point_key(POINT, __version__, engine="scalar")
    cfg = CoreConfig(engine="scalar")
    assert point_key(POINT, __version__, base_cfg=cfg) != \
        point_key(POINT, __version__, base_cfg=cfg, engine="fast")
