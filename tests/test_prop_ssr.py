"""Property-based tests of the SSR address generation and streamers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.memory import Memory
from repro.mem.tcdm import Tcdm
from repro.ssr.address_gen import AffineGenerator
from repro.ssr.config import CfgField, SsrConfig
from repro.ssr.streamer import SsrStreamer


@st.composite
def affine_configs(draw):
    ndims = draw(st.integers(1, 4))
    bounds = [draw(st.integers(1, 5)) for _ in range(ndims)]
    strides = [draw(st.integers(-4, 4)) * 8 for _ in range(ndims)]
    base = draw(st.integers(0, 1 << 16)) * 8
    repeat = draw(st.integers(0, 3))
    cfg = SsrConfig(base=base,
                    bounds=bounds + [1] * (6 - ndims),
                    strides=strides + [0] * (6 - ndims),
                    ndims=ndims, repeat=repeat)
    return cfg


def reference_addresses(cfg: SsrConfig) -> list[int]:
    """Plain-python odometer walk, innermost dimension first."""
    out = []
    idx = [0] * cfg.ndims
    for _ in range(cfg.total_elements()):
        out.append(cfg.base + sum(idx[d] * cfg.strides[d]
                                  for d in range(cfg.ndims)))
        for d in range(cfg.ndims):
            idx[d] += 1
            if idx[d] < cfg.bounds[d]:
                break
            idx[d] = 0
    return out


@given(affine_configs())
@settings(max_examples=200)
def test_affine_generator_matches_reference(cfg):
    gen = AffineGenerator(cfg)
    assert gen.all_addresses() == reference_addresses(cfg)


@given(affine_configs())
@settings(max_examples=100)
def test_affine_element_count(cfg):
    gen = AffineGenerator(cfg)
    assert len(gen.all_addresses()) == cfg.total_elements()


@st.composite
def stream_cases(draw):
    n = draw(st.integers(1, 24))
    stride_elems = draw(st.sampled_from([1, 2, 3]))
    repeat = draw(st.integers(0, 2))
    fifo_depth = draw(st.integers(1, 6))
    return n, stride_elems, repeat, fifo_depth


@given(stream_cases())
@settings(max_examples=60, deadline=None)
def test_read_streamer_delivers_gather(case):
    n, stride_elems, repeat, fifo_depth = case
    mem = Memory(1 << 16)
    tcdm = Tcdm(mem, num_banks=8)
    streamer = SsrStreamer(0, tcdm, fifo_depth=fifo_depth)
    data = np.arange(n * stride_elems, dtype=np.float64) + 1.0
    mem.write_array(0x400, data)

    streamer.write_cfg(CfgField.BASE, 0x400)
    streamer.write_cfg(CfgField.BOUND0, n)
    streamer.write_cfg(CfgField.STRIDE0, stride_elems * 8)
    streamer.write_cfg(CfgField.REPEAT, repeat)
    streamer.write_cfg(CfgField.CTRL, 0)

    out = []
    for _ in range(20 * n + 40):
        streamer.step()
        tcdm.arbitrate()
        while streamer.can_pop():
            out.append(streamer.pop())
    expected = list(np.repeat(data[::stride_elems], repeat + 1))
    assert out == expected
    assert streamer.done
    # Memory traffic is independent of the repeat factor.
    assert streamer.data_port.reads == n


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=64), min_size=1, max_size=16))
@settings(max_examples=60, deadline=None)
def test_write_streamer_roundtrip(values):
    mem = Memory(1 << 16)
    tcdm = Tcdm(mem, num_banks=8)
    streamer = SsrStreamer(1, tcdm, fifo_depth=4)
    streamer.write_cfg(CfgField.BASE, 0x800)
    streamer.write_cfg(CfgField.BOUND0, len(values))
    streamer.write_cfg(CfgField.STRIDE0, 8)
    streamer.write_cfg(CfgField.REPEAT, 0)
    streamer.write_cfg(CfgField.CTRL, 1)

    pushed = 0
    for _ in range(20 * len(values) + 40):
        if pushed < len(values) and streamer.can_push():
            streamer.push(values[pushed])
            pushed += 1
        streamer.step()
        tcdm.arbitrate()
        if streamer.done:
            break
    assert streamer.done
    out = list(mem.read_array(0x800, (len(values),)))
    assert out == values
