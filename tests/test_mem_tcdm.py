"""Banked TCDM arbitration tests."""

import pytest

from repro.mem.memory import Memory
from repro.mem.tcdm import Tcdm


def make_tcdm(banks=4):
    return Tcdm(Memory(1 << 16), num_banks=banks, bank_width=8)


def test_bank_mapping_word_interleaved():
    tcdm = make_tcdm(banks=4)
    assert tcdm.bank_of(0) == 0
    assert tcdm.bank_of(8) == 1
    assert tcdm.bank_of(24) == 3
    assert tcdm.bank_of(32) == 0
    assert tcdm.bank_of(4) == 0    # same 8-byte word


def test_power_of_two_banks_required():
    with pytest.raises(ValueError):
        Tcdm(Memory(1024), num_banks=3)


def test_read_after_write_through_ports():
    tcdm = make_tcdm()
    w = tcdm.port("w", priority=0)
    r = tcdm.port("r", priority=1)
    w.request(16, is_write=True, data=2.5)
    tcdm.arbitrate()
    assert w.response_ready()
    w.take_response()
    r.request(16)
    tcdm.arbitrate()
    assert r.take_response() == 2.5


def test_conflict_same_bank_loses_lower_priority():
    tcdm = make_tcdm(banks=4)
    hi = tcdm.port("hi", priority=0)
    lo = tcdm.port("lo", priority=5)
    tcdm.mem.write_f64(8, 1.0)
    tcdm.mem.write_f64(8 + 32, 2.0)   # same bank (4 banks * 8B = 32)
    hi.request(8)
    lo.request(40)
    tcdm.arbitrate()
    assert hi.response_ready() and not lo.response_ready()
    assert lo.conflicts == 1
    assert tcdm.total_conflicts == 1
    # The loser retries automatically next cycle.
    tcdm.arbitrate()
    assert lo.take_response() == 2.0


def test_no_conflict_on_different_banks():
    tcdm = make_tcdm(banks=4)
    a = tcdm.port("a", priority=0)
    b = tcdm.port("b", priority=1)
    a.request(0)
    b.request(8)
    tcdm.arbitrate()
    assert a.response_ready() and b.response_ready()
    assert tcdm.total_conflicts == 0


def test_streamer_round_robin_fairness():
    tcdm = make_tcdm(banks=2)
    s0 = tcdm.port("s0", priority=10, is_streamer=True)
    s1 = tcdm.port("s1", priority=10, is_streamer=True)
    wins = {"s0": 0, "s1": 0}
    for _ in range(6):
        s0.request(0)
        s1.request(16)   # same bank as 0 with 2 banks
        tcdm.arbitrate()
        for port, name in ((s0, "s0"), (s1, "s1")):
            if port.response_ready():
                port.take_response()
                wins[name] += 1
        # Drain the loser so both are free next round.
        tcdm.arbitrate()
        for port in (s0, s1):
            if port.response_ready():
                port.take_response()
    assert wins["s0"] > 0 and wins["s1"] > 0


def test_port_protocol_violations():
    tcdm = make_tcdm()
    p = tcdm.port("p", priority=0)
    p.request(0)
    with pytest.raises(RuntimeError, match="pending"):
        p.request(8)
    tcdm.arbitrate()
    with pytest.raises(RuntimeError, match="unconsumed"):
        p.request(8)
    p.take_response()
    with pytest.raises(RuntimeError, match="no response"):
        p.take_response()


def test_width_4_and_2_accesses():
    tcdm = make_tcdm()
    p = tcdm.port("p", priority=0)
    p.request(4, is_write=True, data=0xABCD, width=4)
    tcdm.arbitrate()
    p.take_response()
    p.request(4, width=4)
    tcdm.arbitrate()
    assert p.take_response() == 0xABCD
    p.request(2, is_write=True, data=0x1234, width=2)
    tcdm.arbitrate()
    p.take_response()
    p.request(2, width=2)
    tcdm.arbitrate()
    assert p.take_response() == 0x1234


def test_stats_accumulate():
    tcdm = make_tcdm()
    p = tcdm.port("p", priority=0)
    for i in range(3):
        p.request(i * 8, is_write=True, data=float(i))
        tcdm.arbitrate()
        p.take_response()
    stats = tcdm.stats()
    assert stats["p_writes"] == 3
    assert stats["total_accesses"] == 3
