"""Stencil specification and golden-model tests."""

import numpy as np
import pytest

from repro.kernels.stencil import (
    StencilSpec,
    box2d1r,
    box3d1r,
    j2d5pt,
    j3d27pt,
    star3d1r,
)


def test_box3d1r_shape():
    spec = box3d1r()
    assert spec.ntaps == 27
    assert spec.radius == 1
    assert spec.is_cube
    assert abs(sum(spec.coeffs) - 1.0) < 1e-12


def test_box3d1r_coeffs_distinct():
    # All 27 coefficients distinct: this is what makes the kernel
    # register-limited (each needs its own register or stream slot).
    spec = box3d1r()
    assert len(set(spec.coeffs)) == 27


def test_j3d27pt_shape():
    spec = j3d27pt()
    assert spec.ntaps == 27
    assert spec.is_cube
    assert len(set(spec.coeffs)) == 27
    # Center-heavy: the (0,0,0) tap has the largest weight.
    center = spec.taps.index((0, 0, 0))
    assert spec.coeffs[center] == max(spec.coeffs)


def test_star3d1r_not_cube():
    spec = star3d1r()
    assert spec.ntaps == 7
    assert not spec.is_cube


def test_2d_variants_have_flat_z():
    for spec in (j2d5pt(), box2d1r()):
        assert all(tap[0] == 0 for tap in spec.taps)


def test_tap_coeff_length_mismatch_rejected():
    with pytest.raises(ValueError, match="taps but"):
        StencilSpec("bad", ((0, 0, 0),), (1.0, 2.0))


def test_flops_per_point():
    assert box3d1r().flops_per_point == 1 + 2 * 26
    assert star3d1r().flops_per_point == 1 + 2 * 6


def test_golden_constant_field():
    # A normalized stencil over a constant field returns the constant.
    spec = box3d1r()
    grid = np.full((5, 5, 5), 3.0)
    out = spec.golden(grid)
    assert out.shape == (3, 3, 3)
    assert np.allclose(out, 3.0)


def test_golden_identity_stencil():
    # A single-center-tap stencil has radius 0: the "interior" is the
    # whole grid and the output is an exact copy.
    spec = StencilSpec("ident", ((0, 0, 0),), (1.0,))
    grid = np.random.default_rng(0).random((4, 4, 4))
    out = spec.golden(grid)
    assert spec.radius == 0
    assert np.array_equal(out, grid)


def test_golden_shift_stencil():
    spec = StencilSpec("shift", ((0, 0, 1),), (1.0,))
    grid = np.random.default_rng(0).random((4, 4, 5))
    out = spec.golden(grid)
    assert np.array_equal(out, grid[1:-1, 1:-1, 2:])


def test_golden_matches_naive_loop():
    spec = star3d1r()
    rng = np.random.default_rng(1)
    grid = rng.random((4, 5, 6))
    out = spec.golden(grid)
    for z in range(out.shape[0]):
        for y in range(out.shape[1]):
            for x in range(out.shape[2]):
                acc = spec.coeffs[0] * grid[1 + z, 1 + y, 1 + x]
                for (dz, dy, dx), c in zip(spec.taps[1:], spec.coeffs[1:]):
                    acc = grid[1 + z + dz, 1 + y + dy, 1 + x + dx] * c + acc
                assert out[z, y, x] == acc


def test_golden_too_small_grid_rejected():
    with pytest.raises(ValueError, match="too small"):
        box3d1r().golden(np.zeros((2, 5, 5)))
