"""Report helper tests."""

import math

import pytest

from repro.eval.report import format_table, geomean, percent_delta


def test_geomean_basic():
    assert geomean([4.0, 1.0]) == pytest.approx(2.0)
    assert geomean([2.0, 2.0, 2.0]) == pytest.approx(2.0)


def test_geomean_matches_definition():
    values = [1.04, 1.08]
    assert geomean(values) == pytest.approx(
        math.exp((math.log(1.04) + math.log(1.08)) / 2))


def test_geomean_rejects_bad_input():
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])
    with pytest.raises(ValueError):
        geomean([-1.0])


def test_percent_delta():
    assert percent_delta(1.04, 1.0) == pytest.approx(4.0)
    assert percent_delta(0.9, 1.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        percent_delta(1.0, 0.0)


def test_format_table_alignment():
    table = format_table(["name", "value"],
                         [["a", 1.5], ["longer", 10.25]],
                         title="demo")
    lines = table.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", "+"}
    # Columns align: every row has the separator at the same position.
    sep_pos = lines[1].index("|")
    assert all(line.index("|") == sep_pos for line in lines[3:])


def test_format_table_float_formatting():
    table = format_table(["x"], [[0.123456], [1234.5678]])
    assert "0.123" in table
    assert "1234.6" in table


def test_scaling_rows_strong_and_weak():
    from types import SimpleNamespace

    from repro.eval.report import scaling_rows

    # Strong scaling: fixed work, halving cycles per doubling is
    # perfect (speedup n, efficiency 1); measured 4-cluster run is
    # slower than perfect.
    strong = {1: SimpleNamespace(cycles=8000),
              2: SimpleNamespace(cycles=4000),
              4: SimpleNamespace(cycles=2500)}
    rows = scaling_rows(strong)
    assert rows[0] == [1, 8000, 1.0, 1.0]
    assert rows[1] == [2, 4000, 2.0, 1.0]
    assert rows[2] == [4, 2500, 3.2, 0.8]

    # Weak scaling: fixed work per cluster, equal cycles are perfect
    # (efficiency 1, speedup n).
    weak = {1: SimpleNamespace(cycles=8000),
            2: SimpleNamespace(cycles=8000),
            4: SimpleNamespace(cycles=10000)}
    rows = scaling_rows(weak, weak=True)
    assert rows[0] == [1, 8000, 1.0, 1.0]
    assert rows[1] == [2, 8000, 2.0, 1.0]
    assert rows[2] == [4, 10000, 3.2, 0.8]

    assert scaling_rows({}) == []
