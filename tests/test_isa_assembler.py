"""Assembler tests: syntax, labels, pseudo-instructions, symbols."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.disassembler import format_instr


def test_empty_and_comments():
    prog = assemble("""
        # comment only
        // another

        addi a0, a0, 1   # trailing
    """)
    assert len(prog) == 1
    assert prog.instrs[0].mnemonic == "addi"


def test_labels_forward_and_backward():
    prog = assemble("""
    start:
        addi a0, a0, 1
        beq a0, a1, end
        jal x0, start
    end:
        ebreak
    """)
    assert prog.labels == {"start": 0, "end": 12}
    assert prog.instrs[1].imm == 8      # forward to end
    assert prog.instrs[2].imm == -8     # backward to start


def test_label_on_same_line():
    prog = assemble("loop: addi a0, a0, 1\nbne a0, a1, loop")
    assert prog.labels["loop"] == 0
    assert prog.instrs[1].imm == -4


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a:\na:\nebreak")


def test_numeric_branch_targets():
    # The paper's listings use raw byte offsets.
    prog = assemble("bne a0, a1, -12")
    assert prog.instrs[0].imm == -12


def test_symbol_substitution_both_styles():
    prog = assemble("""
        li a0, %base
        addi a1, a1, %[off]
    """, symbols={"base": 0x2000, "off": 24})
    assert prog.instrs[0].imm == 0x2000 or prog.instrs[0].mnemonic == "lui"
    assert prog.instrs[-1].imm == 24


def test_undefined_symbol_raises():
    with pytest.raises(AssemblerError, match="undefined symbol"):
        assemble("li a0, %nope")


def test_li_small_is_addi():
    prog = assemble("li a0, 42")
    assert [i.mnemonic for i in prog.instrs] == ["addi"]


def test_li_large_is_lui_addi():
    prog = assemble("li a0, 0x12345")
    assert [i.mnemonic for i in prog.instrs] == ["lui", "addi"]


def test_li_aligned_is_lui_only():
    prog = assemble("li a0, 0x12000")
    assert [i.mnemonic for i in prog.instrs] == ["lui"]


def test_li_negative():
    prog = assemble("li a0, -70000")
    # Semantics checked in the core tests; here just shape.
    assert [i.mnemonic for i in prog.instrs] == ["lui", "addi"]


def test_li_unsigned_32bit():
    prog = assemble("li a0, 0xFFFFFFFF")
    assert prog.instrs[0].mnemonic == "addi"
    assert prog.instrs[0].imm == -1


def test_li_out_of_range():
    with pytest.raises(AssemblerError, match="does not fit"):
        assemble("li a0, 0x100000000")


@pytest.mark.parametrize("pseudo,expansion", [
    ("nop", "addi zero, zero, 0"),
    ("mv a0, a1", "addi a0, a1, 0"),
    ("j 8", "jal zero, 8"),
    ("ret", "jalr zero, ra, 0"),
    ("beqz a0, 8", "beq a0, zero, 8"),
    ("bnez a0, -4", "bne a0, zero, -4"),
    ("fmv.d ft1, ft2", "fsgnj.d ft1, ft2, ft2"),
    ("fneg.d ft1, ft2", "fsgnjn.d ft1, ft2, ft2"),
    ("fabs.d ft1, ft2", "fsgnjx.d ft1, ft2, ft2"),
    ("csrr t0, mcycle", "csrrs t0, mcycle, zero"),
    ("csrw mcycle, t0", "csrrw zero, mcycle, t0"),
    ("csrs 0x7C3, t0", "csrrs zero, chain_mask, t0"),
    ("csrc 0x7C3, t0", "csrrc zero, chain_mask, t0"),
])
def test_pseudo_expansion(pseudo, expansion):
    prog = assemble(pseudo)
    assert format_instr(prog.instrs[0]) == expansion


def test_bgt_ble_swap_operands():
    prog = assemble("bgt a0, a1, 8\nble a0, a1, 8")
    assert format_instr(prog.instrs[0]) == "blt a1, a0, 8"
    assert format_instr(prog.instrs[1]) == "bge a1, a0, 8"


def test_csr_symbolic_names():
    prog = assemble("csrrwi x0, chain_mask, 8")
    assert prog.instrs[0].csr == 0x7C3
    prog = assemble("csrrsi x0, ssr_enable, 1")
    assert prog.instrs[0].csr == 0x7C0


def test_memory_operands():
    prog = assemble("fld ft0, -24(a1)\nfsd ft1, 0(sp)")
    assert prog.instrs[0].imm == -24
    assert prog.instrs[1].rs2 == 1


def test_bad_operand_count():
    with pytest.raises(AssemblerError, match="expects"):
        assemble("add a0, a1")


def test_bad_register_name():
    with pytest.raises(AssemblerError, match="unknown"):
        assemble("add a0, a1, ft3")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError, match="imm\\(reg\\)"):
        assemble("lw a0, a1")


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("fma.d ft0, ft1, ft2")


def test_addresses_assigned():
    prog = assemble("nop\nnop\nebreak", base=0x100)
    assert [i.addr for i in prog.instrs] == [0x100, 0x104, 0x108]
    assert prog.at(0x104).mnemonic == "addi"


def test_frep_two_and_four_operand_forms():
    prog = assemble("frep.o t0, 3\nfrep.i t1, 2, 1, 5")
    assert prog.instrs[0].mnemonic == "frep.o"
    assert prog.instrs[1].mnemonic == "frep.i"


def test_encode_words():
    prog = assemble("addi a0, a0, 1\nebreak")
    words = prog.encode_words()
    assert len(words) == 2
    assert all(isinstance(w, int) for w in words)
