"""Property-based integer ALU semantics against numpy's int32 model."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.int_core import IntCore, _sext_width, _signed

u32 = st.integers(0, 0xFFFFFFFF)


@given(u32)
def test_signed_roundtrip(value):
    signed = _signed(value)
    assert -(1 << 31) <= signed < (1 << 31)
    assert signed & 0xFFFFFFFF == value


@given(u32, st.sampled_from([8, 16]))
def test_sext_width_matches_numpy(value, bits):
    got = _sext_width(value, bits)
    dtype = np.uint8 if bits == 8 else np.uint16
    sdtype = np.int8 if bits == 8 else np.int16
    narrowed = np.array([value], dtype=np.uint32).astype(dtype)
    expected = int(narrowed.astype(sdtype).astype(np.int64)[0]) \
        & 0xFFFFFFFF
    assert got == expected


@given(u32, u32)
def test_mul_matches_numpy(a, b):
    lo = IntCore._mul("mul", a, b)
    hi = IntCore._mul("mulhu", a, b)
    full = int(np.uint64(a) * np.uint64(b))
    assert lo == full & 0xFFFFFFFF
    assert hi == (full >> 32) & 0xFFFFFFFF


@given(u32, u32)
def test_mulh_signed(a, b):
    hi = IntCore._mul("mulh", a, b)
    full = _signed(a) * _signed(b)
    assert hi == (full >> 32) & 0xFFFFFFFF


@given(u32, u32)
def test_div_rem_identity(a, b):
    q = IntCore._div("div", a, b)
    r = IntCore._div("rem", a, b)
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        assert q == 0xFFFFFFFF
        assert _signed(r) == sa
    else:
        # RISC-V: quotient rounds toward zero; q*b + r == a.
        assert _signed(q) * sb + _signed(r) == sa
        assert abs(_signed(r)) < abs(sb) or _signed(r) == 0


@given(u32, u32)
def test_divu_remu_identity(a, b):
    q = IntCore._div("divu", a, b)
    r = IntCore._div("remu", a, b)
    if b == 0:
        assert q == 0xFFFFFFFF and r == a
    else:
        assert q * b + r == a
        assert r < b
