"""The serve layer: journal durability, cache-first scheduling,
in-flight coalescing, cancellation, and the HTTP wire protocol.

The expensive guarantees are proven end-to-end over real HTTP:
50 concurrent submissions of one identical workload run exactly one
simulation (the metrics prove it) and all 50 observe bit-identical
result JSON; a server restarted mid-campaign resumes from the job
journal with no lost and no duplicated results.
"""

import json
import threading
import time

import pytest

from repro.api import Session, workload
from repro.serve import Job, JobStore, ServeError
from repro.serve.scheduler import QueueFull, Scheduler
from repro.serve.testing import ServerThread
from repro.sweep import ResultCache

FAST = workload("vecop", "baseline", n=16)
FAST2 = workload("vecop", "chaining", n=16)
#: ~2.5s of simulation: long enough that concurrent submissions
#: reliably coalesce onto the in-flight execution.
SLOW = workload("box3d1r", "Chaining+", grid=(8, 16, 64))


# -- job journal --------------------------------------------------------------


def test_journal_replay_requeues_unfinished(tmp_path):
    store = JobStore(tmp_path / "jobs.jsonl")
    queued = Job(id="job-aaa", workloads=[FAST, FAST2])
    running = Job(id="job-bbb", workloads=[FAST])
    finished = Job(id="job-ccc", workloads=[FAST])
    for job in (queued, running, finished):
        store.add(job)
    store.set_status(running, "running")
    store.set_status(finished, "done")

    replayed = JobStore(tmp_path / "jobs.jsonl")
    pending = replayed.replay()
    assert {j.id for j in pending} == {"job-aaa", "job-bbb"}
    assert all(j.status == "queued" for j in pending)
    assert replayed.get("job-ccc").status == "done"
    assert replayed.get("job-ccc").terminal
    # requeued jobs carry their workloads through the round trip
    assert replayed.get("job-aaa").workloads == [FAST, FAST2]


def test_journal_tolerates_torn_tail(tmp_path):
    store = JobStore(tmp_path / "jobs.jsonl")
    store.add(Job(id="job-aaa", workloads=[FAST]))
    with open(tmp_path / "jobs.jsonl", "a") as sink:
        sink.write('{"op": "submit", "id": "job-to')  # killed mid-write
    replayed = JobStore(tmp_path / "jobs.jsonl")
    pending = replayed.replay()
    assert [j.id for j in pending] == ["job-aaa"]


# -- scheduler ----------------------------------------------------------------


def _scheduler(tmp_path, **kwargs):
    session = Session(cache=str(tmp_path / "store"), workers=1)
    store = JobStore(tmp_path / "store" / "jobs.jsonl")
    return Scheduler(session, store, **kwargs)


def test_cache_hit_answers_synchronously(tmp_path):
    sched = _scheduler(tmp_path, workers=1)
    try:
        first = sched.submit([FAST])
        _wait_terminal(sched, first.id)
        assert sched.counters["executions"] == 1

        again = sched.submit([FAST])
        # terminal at submit time: no queue, no pool, no new execution
        assert again.terminal and again.status == "done"
        assert again.results[0]["cached"] is True
        assert sched.counters["executions"] == 1
        assert sched.counters["cache_hits"] == 1
    finally:
        sched.shutdown(wait=True)


def test_queue_bound_rejects_atomically(tmp_path):
    sched = _scheduler(tmp_path, workers=1, max_queue=1)
    try:
        distinct = [workload("vecop", "baseline", n=n)
                    for n in (17, 18, 19)]
        with pytest.raises(QueueFull):
            sched.submit(distinct)
        # the rejection journaled nothing and queued nothing
        assert sched.store.jobs == {}
        assert sched.metrics()["serve.queue_depth"] == 0
    finally:
        sched.shutdown(wait=True)


def test_priority_orders_the_queue(tmp_path):
    sched = _scheduler(tmp_path, workers=1)
    try:
        sched.submit([SLOW])  # occupies the single worker
        low = sched.submit([workload("vecop", "baseline", n=17)],
                           priority=20)
        high = sched.submit([workload("vecop", "baseline", n=18)],
                            priority=5)
        with sched._lock:
            head = min(sched._heap)[2]
        assert head == sched.session.key(high.workloads[0])
        assert head != sched.session.key(low.workloads[0])
    finally:
        sched.shutdown(wait=True)


def _wait_terminal(sched, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = sched.store.get(job_id)
        if job.terminal:
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} not terminal after {timeout}s")


# -- HTTP API -----------------------------------------------------------------


def test_http_endpoints_roundtrip(tmp_path):
    with ServerThread(tmp_path / "store", workers=1) as server:
        client = server.client()
        health = client.healthz()
        assert health["ok"] is True and "version" in health

        job = client.submit([FAST, FAST2])
        view = client.wait(job["id"])
        assert view["status"] == "done"
        assert view["done"] == view["points"] == 2
        statuses = [r["status"] for r in view["results"]]
        assert statuses == ["ok", "ok"]
        # wire schema is Result.to_dict()
        assert view["results"][0]["result"]["schema"].startswith(
            "repro-result/")

        events = [e["event"] for e in client.events(job["id"])]
        assert events[0] == "submitted" and events[-1] == "finished"

        metrics = client.metrics()
        assert metrics["serve"]["serve.executions"] == 2
        assert "counters" in metrics["metrics"]


def test_http_rejects_garbage(tmp_path):
    with ServerThread(tmp_path / "store", workers=1) as server:
        client = server.client()
        with pytest.raises(ServeError) as err:
            client._request("POST", "/v1/jobs", {"nope": 1})
        assert err.value.status == 400
        with pytest.raises(ServeError) as err:
            client.job("job-doesnotexist")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("GET", "/v1/nope")
        assert err.value.status == 404


def test_http_cancel_pending_job(tmp_path):
    with ServerThread(tmp_path / "store", workers=1) as server:
        client = server.client()
        blocker = client.submit(SLOW)
        pending = client.submit(
            [workload("vecop", "baseline", n=n) for n in (21, 22)])
        cancelled = client.cancel(pending["id"])
        assert cancelled["status"] == "cancelled"
        view = client.job(pending["id"])
        assert view["status"] == "cancelled"
        assert all(r["status"] == "cancelled" for r in view["results"])
        with pytest.raises(ServeError) as err:  # cancel is terminal
            client.cancel(pending["id"])
        assert err.value.status == 409
        # the blocker is unaffected and still completes
        assert client.wait(blocker["id"])["status"] == "done"
        metrics = client.metrics()["serve"]
        assert metrics["serve.jobs_cancelled"] == 1
        assert metrics["serve.executions"] == 1  # cancelled never ran


# -- the tentpole guarantees --------------------------------------------------


def test_50_concurrent_identical_submissions_run_once(tmp_path):
    """The coalescing contract, end to end over HTTP: 50 concurrent
    submissions of one identical workload cost exactly 1 simulation
    and every caller observes bit-identical result JSON."""
    with ServerThread(tmp_path / "store", workers=2) as server:
        results: list[dict | Exception] = [None] * 50

        def submit_and_wait(slot: int) -> None:
            client = server.client(timeout=60.0)
            try:
                job = client.submit(SLOW)
                results[slot] = client.wait(job["id"], timeout=120.0)
            except Exception as exc:  # surfaced via the assert below
                results[slot] = exc

        threads = [threading.Thread(target=submit_and_wait, args=(i,))
                   for i in range(50)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180.0)

        failures = [r for r in results if isinstance(r, Exception)]
        assert not failures, failures[:3]
        assert all(view["status"] == "done" for view in results)

        payloads = {json.dumps(view["results"][0]["result"],
                               sort_keys=True) for view in results}
        assert len(payloads) == 1  # bit-identical for all 50

        metrics = server.client().metrics()["serve"]
        assert metrics["serve.executions"] == 1
        assert metrics["serve.requests"] == 50
        assert (metrics["serve.cache_hits"]
                + metrics["serve.dedup_hits"]) == 49


def test_restart_resumes_from_journal(tmp_path):
    """Durability contract: stop a server mid-campaign; a new server
    on the same store re-enqueues the job from the journal, finished
    points come back as cache hits, and the total simulation count
    across both lifetimes is exactly the number of unique points."""
    store = tmp_path / "store"
    points = [workload("box3d1r", "Base", grid=(4, 8, 32)),
              workload("box3d1r", "Base-", grid=(4, 8, 32)),
              workload("box3d1r", "Chaining", grid=(4, 8, 32)),
              workload("box3d1r", "Chaining+", grid=(4, 8, 32)),
              workload("box3d1r", "Base--", grid=(4, 8, 32)),
              workload("box3d1r", "Base", grid=(4, 16, 32))]

    first = ServerThread(store, workers=1).start()
    client = first.client()
    job = client.submit(points)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:  # let part of the job land
        if client.job(job["id"])["done"] >= 1:
            break
        time.sleep(0.05)
    first.stop()
    # drain the in-flight point so its record lands in exactly one
    # lifetime (the CI smoke test covers the kill -9 hard-stop path)
    deadline = time.monotonic() + 60.0
    while first.scheduler._inflight and time.monotonic() < deadline:
        time.sleep(0.05)
    executed_before = first.scheduler.counters["executions"]
    assert 1 <= executed_before < len(points)

    second = ServerThread(store, workers=1).start()
    try:
        assert second.requeued == len(points) - executed_before
        client = second.client()
        view = client.wait(job["id"], timeout=180.0)
        assert view["status"] == "done"
        assert all(r is not None and r["status"] == "ok"
                   for r in view["results"])
        # no lost results, no duplicated simulations
        executed_after = second.scheduler.counters["executions"]
        assert executed_before + executed_after == len(points)
        report = ResultCache(store).verify()
        assert report["ok"], report
        assert not report["duplicates"] and not report["conflicts"]
    finally:
        second.stop()
