"""Cooperative cancellation and graceful shutdown.

Covers the :class:`repro.api.CancelToken` latch, ``"cancelled"``
outcome semantics in serial and parallel runners (results that landed
are kept, the rest are marked cancelled, nothing hits the failure
log), ``Session.map(cancel=...)`` pass-through, and the CLI
regression: a sweep killed with SIGINT drains, exits nonzero, and
leaves no orphaned pool workers behind.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import CancelToken, Session, workload
from repro.sweep import ResultCache, SweepRunner, make_point

FAST_POINTS = [
    make_point("vecop", "baseline", n=16),
    make_point("vecop", "chaining", n=16),
    make_point("box3d1r", "Base", grid=(2, 3, 8)),
    make_point("box3d1r", "Chaining+", grid=(2, 3, 8)),
]


def test_token_latch_semantics():
    token = CancelToken()
    assert not token.cancelled
    assert bool(token)  # presence, not state
    token.cancel()
    token.cancel()  # idempotent
    assert token.cancelled
    assert "cancelled" in repr(token)


def test_pretripped_token_cancels_everything_serial():
    token = CancelToken()
    token.cancel()
    campaign = SweepRunner(workers=0).run(FAST_POINTS, cancel=token)
    assert len(campaign) == len(FAST_POINTS)
    assert all(o.status == "cancelled" for o in campaign)
    assert campaign.cancelled_count == len(FAST_POINTS)
    assert not campaign.interrupted  # cooperative, not aborted
    assert campaign.summary()["cancelled"] == len(FAST_POINTS)


def test_cancel_mid_campaign_keeps_landed_results():
    token = CancelToken()

    def progress(outcome, done, total):
        if done == 2:
            token.cancel()

    campaign = SweepRunner(workers=0).run(
        FAST_POINTS, progress=progress, cancel=token)
    statuses = [o.status for o in campaign]
    assert statuses[:2] == ["ok", "ok"]
    assert statuses[2:] == ["cancelled", "cancelled"]
    # point order is preserved even for cancelled tails
    assert [o.point for o in campaign] == FAST_POINTS


def test_cancelled_points_do_not_hit_failure_log(tmp_path):
    cache = ResultCache(tmp_path / "store")
    token = CancelToken()
    token.cancel()
    SweepRunner(workers=0, cache=cache).run(FAST_POINTS, cancel=token)
    report = cache.verify()
    assert report["ok"]
    assert report["failure_records"] == 0


def test_parallel_cancel_drains_cleanly():
    token = CancelToken()

    def progress(outcome, done, total):
        token.cancel()

    campaign = SweepRunner(workers=2).run(
        FAST_POINTS, progress=progress, cancel=token)
    assert len(campaign) == len(FAST_POINTS)
    assert campaign.ok_count >= 1
    assert campaign.ok_count + campaign.cancelled_count == len(campaign)
    for outcome in campaign:
        if outcome.status == "cancelled":
            assert outcome.result is None
            assert "cancel" in outcome.message.lower()


def test_session_map_threads_cancel_token(tmp_path):
    session = Session(cache=tmp_path / "store", workers=0)
    token = CancelToken()
    token.cancel()
    campaign = session.map(
        [workload("vecop", "baseline", n=16),
         workload("vecop", "chaining", n=16)],
        cancel=token)
    assert campaign.cancelled_count == 2


def test_session_map_triage_threads_cancel_token(tmp_path):
    session = Session(cache=tmp_path / "store", workers=0)
    token = CancelToken()
    token.cancel()
    campaign = session.map(
        [workload("vecop", "baseline", n=16),
         workload("vecop", "chaining", n=16)],
        fidelity="triage", interest={"top": 1.0},
        cancel=token)
    # triage estimates are analytical (cheap, not cancelled); only the
    # cycle-accurate re-runs honour the token.
    assert campaign.cancelled_count == 2


def test_sigint_drains_and_exits_nonzero(tmp_path):
    """Regression: a killed sweep must drain, exit 130, leave a clean
    store, and not orphan pool workers."""
    store = tmp_path / "store"
    spec = {
        "name": "cancel regression",
        "kernels": ["box3d1r"],
        "variants": ["Base--", "Base-", "Base", "Chaining", "Chaining+"],
        "grids": [[4, 8, 32], [4, 16, 32], [8, 16, 32], [8, 16, 64]],
    }
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(spec))

    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep",
         "--spec", str(spec_path), "--cache-dir", str(store),
         "--workers", "2", "--quiet"],
        env=env, start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    time.sleep(3.0)  # let the pool spin up and land a few points
    os.killpg(proc.pid, signal.SIGINT)
    try:
        stdout, stderr = proc.communicate(timeout=60)
    except subprocess.TimeoutExpired:
        os.killpg(proc.pid, signal.SIGKILL)
        pytest.fail("sweep did not exit after SIGINT")

    assert proc.returncode == 130, (stdout, stderr)
    # no survivors in the process group
    time.sleep(0.5)
    with pytest.raises(ProcessLookupError):
        os.killpg(proc.pid, 0)
    # whatever landed before the interrupt is a clean, loadable store
    if store.exists():
        report = ResultCache(store).verify()
        assert report["ok"]
        assert not report["corrupt"]
