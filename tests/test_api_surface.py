"""Public-API surface snapshots.

``repro.__all__`` and ``repro.api.__all__`` are pinned against
checked-in lists so that surface changes are always a reviewed,
deliberate diff -- update the snapshot here when the API genuinely
grows or shrinks.
"""

import warnings

import repro
import repro.api

REPRO_ALL = [
    "AreaModel",
    "Campaign",
    "ChainController",
    "Cluster",
    "CoreConfig",
    "EnergyModel",
    "EnergyParams",
    "GLOBAL_BASE",
    "Grid3d",
    "KernelBuild",
    "Result",
    "ResultCache",
    "RunResult",
    "Session",
    "StencilSpec",
    "SweepRunner",
    "SweepSpec",
    "System",
    "SystemConfig",
    "SystemReport",
    "TraceRecorder",
    "Variant",
    "VecopVariant",
    "Workload",
    "__version__",
    "assemble",
    "box3d1r",
    "build_partitioned_stencil",
    "build_stencil",
    "build_vecop",
    "decode",
    "disassemble",
    "encode",
    "geomean",
    "j3d27pt",
    "make_point",
    "make_workload",
    "obs",
    "render_dataflow",
    "render_issue_trace",
    "run_build",
    "run_stencil_variant",
    "run_system_stencil",
    "star3d1r",
    "workload",
]

REPRO_API_ALL = [
    "CancelToken",
    "DEFAULT_MAX_CYCLES",
    "FPU_DEPTH_KEY",
    "OVERRIDABLE_FIELDS",
    "RESULT_KEYS",
    "RESULT_METRICS",
    "RESULT_SCALARS",
    "RESULT_SCHEMA",
    "Result",
    "SYSTEM_FIELDS",
    "Session",
    "SystemReport",
    "VECOP_KERNEL",
    "Workload",
    "apply_overrides",
    "execute_workload",
    "make_workload",
    "normalize_variant",
    "parse_engine",
    "parse_kernel",
    "parse_stencil_variant",
    "parse_variant",
    "resolve_config",
    "resolve_variant",
    "workload",
]


def test_repro_all_matches_snapshot():
    assert sorted(repro.__all__) == REPRO_ALL
    assert repro.__all__ == sorted(repro.__all__)


def test_repro_api_all_matches_snapshot():
    assert sorted(repro.api.__all__) == REPRO_API_ALL
    assert repro.api.__all__ == sorted(repro.api.__all__)


def test_every_exported_name_resolves():
    with warnings.catch_warnings():
        # Point is a deprecated alias; resolving it is still required.
        warnings.simplefilter("ignore", DeprecationWarning)
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name


def test_star_import_is_warning_free():
    """Point is shimmed via __getattr__ but kept OUT of __all__: users
    who never touch it must not see deprecation noise on `import *`."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        exec("from repro import *", {})
        exec("from repro.sweep import *", {})


def test_deprecated_names_warn_with_pointers():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        getattr(repro, "Point")
    assert len(caught) == 1
    assert issubclass(caught[0].category, DeprecationWarning)
    assert "Workload" in str(caught[0].message)
