"""Instruction spec table tests."""

import pytest

from repro.isa.instructions import (
    FP_COMPUTE_CLASSES,
    FP_QUEUE_CLASSES,
    Format,
    Instr,
    InstrClass,
    SPEC_TABLE,
    spec_for,
)


def test_table_covers_expected_families():
    expected = [
        "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt",
        "sltu", "addi", "lui", "auipc", "lw", "sw", "beq", "bne", "blt",
        "bge", "jal", "jalr", "mul", "div", "csrrw", "csrrs", "csrrwi",
        "fld", "fsd", "fadd.d", "fsub.d", "fmul.d", "fdiv.d", "fsqrt.d",
        "fmadd.d", "fmsub.d", "fnmadd.d", "fnmsub.d", "fsgnj.d", "fmin.d",
        "feq.d", "flt.d", "fle.d", "fcvt.w.d", "fcvt.d.w", "frep.o",
        "frep.i", "scfgw", "scfgr", "ebreak", "ecall",
    ]
    for mnemonic in expected:
        assert mnemonic in SPEC_TABLE, mnemonic


def test_spec_for_unknown_raises():
    with pytest.raises(KeyError, match="unknown mnemonic"):
        spec_for("fadd.q")


def test_fp_compute_classification():
    assert spec_for("fadd.d").is_fp_compute
    assert spec_for("fmadd.d").is_fp_compute
    assert spec_for("fsgnj.d").is_fp_compute
    assert not spec_for("fld").is_fp_compute
    assert not spec_for("fsd").is_fp_compute
    assert not spec_for("addi").is_fp_compute


def test_fp_queue_classification():
    # Everything the FP subsystem executes, including non-compute.
    for mnemonic in ("fadd.d", "fld", "fsd", "frep.o", "scfgw"):
        assert spec_for(mnemonic).is_fp, mnemonic
    for mnemonic in ("addi", "beq", "lw", "ebreak"):
        assert not spec_for(mnemonic).is_fp, mnemonic


def test_compute_subset_of_queue_classes():
    assert FP_COMPUTE_CLASSES < FP_QUEUE_CLASSES


def test_operand_domains():
    fld = spec_for("fld")
    assert fld.rd_domain == "f" and fld.rs1_domain == "x"
    fsd = spec_for("fsd")
    assert fsd.rs2_domain == "f" and fsd.rs1_domain == "x"
    feq = spec_for("feq.d")
    assert feq.rd_domain == "x" and feq.rs1_domain == "f"
    fcvt_dw = spec_for("fcvt.d.w")
    assert fcvt_dw.rd_domain == "f" and fcvt_dw.rs1_domain == "x"
    fmadd = spec_for("fmadd.d")
    assert fmadd.rs3_domain == "f"


def test_timing_classes():
    assert spec_for("fadd.d").iclass is InstrClass.FP_ADD
    assert spec_for("fmul.d").iclass is InstrClass.FP_MUL
    assert spec_for("fmadd.d").iclass is InstrClass.FP_FMA
    assert spec_for("fdiv.d").iclass is InstrClass.FP_DIV
    assert spec_for("mul").iclass is InstrClass.INT_MUL
    assert spec_for("div").iclass is InstrClass.INT_DIV
    assert spec_for("frep.o").iclass is InstrClass.FREP


def test_instr_accessors():
    instr = Instr("fadd.d", rd=3, rs1=0, rs2=1)
    assert instr.iclass is InstrClass.FP_ADD
    assert instr.is_fp and instr.is_fp_compute
    assert instr.spec.fmt is Format.FR


def test_every_spec_has_consistent_format_domains():
    for mnemonic, spec in SPEC_TABLE.items():
        if spec.fmt in (Format.FR, Format.FR4):
            assert spec.rs1_domain == "f", mnemonic
        if spec.fmt in (Format.I, Format.SHIFT, Format.LOAD):
            assert spec.rd_domain == "x", mnemonic
