"""Differential tests: the scalar-v2 micro-op engine vs the seed scalar.

The micro-op engine (pre-decoded dispatch + idle-cycle fast-forwarding,
``CoreConfig.engine = "scalar-v2"``) must be indistinguishable from the
seed interpreter in every architecturally visible quantity.  Two layers
of evidence:

* **digest tests** run the workloads the vectorized FREP fast path
  rejects -- stencils (indirect SSR streams), ``frep.i``, register
  staggering, FP loads, DMA drains, multicore barriers -- to completion
  under both engines and compare a full-machine digest (results, cycle
  counts, every perf/stall/TCDM/SSR/DMA counter, trace events);
* **lockstep fuzz** steps two clusters cycle-by-cycle over randomized
  small programs and compares the complete machine state after every
  cycle, so even a transient one-cycle divergence that cancels out by
  the end of the run is caught.
"""

import random

import numpy as np
import pytest

from repro.core.cluster import Cluster
from repro.core.config import CoreConfig
from repro.kernels.registry import get_stencil
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import VARIANT_ORDER, Variant
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.trace import TraceRecorder

DATA = 0x2000
OUT = 0x6000


def machine_digest(cluster: Cluster) -> dict:
    """Every architecturally visible quantity of a finished run."""
    return {
        "cycles": cluster.cycle,
        "summary": cluster.perf.summary(),
        "stalls": cluster.perf.stall_breakdown(),
        "marks": {k: (v.cycle, v.counters)
                  for k, v in cluster.perf.marks.items()},
        "tcdm": cluster.tcdm.stats(),
        "fpregs": [tuple(fp.fpregs.values) for fp in cluster.fps],
        "intregs": [tuple(core.regs.values) for core in cluster.cores],
        "chain": [(fp.chain.mask, tuple(fp.chain.valid), fp.chain.pushes,
                   fp.chain.pops, fp.chain.backpressure_events)
                  for fp in cluster.fps],
        "streamers": [[(s.active_cycles, s.elements_moved, s._to_consume,
                        s._to_produce) for s in fp.streamers]
                      for fp in cluster.fps],
        "lsu": [(fp.lsu.loads, fp.lsu.stores) for fp in cluster.fps],
        "dma": (cluster.dma.bytes_moved, cluster.dma.busy_cycles,
                cluster.dma.transfers_completed),
        "mem": bytes(cluster.mem._data),
    }


def run_engine(source, engine: str, *, num_cores: int = 1,
               loader=None, trace: bool = False,
               fetch_from_memory: bool = False):
    cfg = CoreConfig(engine=engine, fetch_from_memory=fetch_from_memory)
    recorder = TraceRecorder() if trace else None
    if hasattr(source, "asm"):
        cluster = Cluster(source.asm, cfg=cfg, symbols=source.symbols,
                          trace=recorder, num_cores=num_cores)
        source.load_into(cluster)
    else:
        cluster = Cluster(source, cfg=cfg, trace=recorder,
                          num_cores=num_cores)
        if loader is not None:
            loader(cluster)
    cluster.run()
    return cluster, recorder


def assert_equivalent(source, *, num_cores: int = 1, loader=None,
                      trace: bool = False, fetch_from_memory: bool = False,
                      engines=("scalar-v2", "auto")):
    ref, ref_tr = run_engine(source, "scalar", num_cores=num_cores,
                             loader=loader, trace=trace,
                             fetch_from_memory=fetch_from_memory)
    ref_digest = machine_digest(ref)
    for engine in engines:
        got, got_tr = run_engine(source, engine, num_cores=num_cores,
                                 loader=loader, trace=trace,
                                 fetch_from_memory=fetch_from_memory)
        assert machine_digest(got) == ref_digest, engine
        if trace:
            assert [(e.cycle, e.text, e.kind, e.chain_valid,
                     e.pipe_occupancy) for e in got_tr.fp_events] \
                == [(e.cycle, e.text, e.kind, e.chain_valid,
                     e.pipe_occupancy) for e in ref_tr.fp_events], engine
            assert [(e.cycle, e.text, e.dispatched)
                    for e in got_tr.int_events] \
                == [(e.cycle, e.text, e.dispatched)
                    for e in ref_tr.int_events], engine
    return ref


# -- fast-path-rejected workloads ------------------------------------------

@pytest.mark.parametrize("variant", VARIANT_ORDER,
                         ids=lambda v: v.label)
def test_stencil_variants_equivalent(variant, tiny_grid):
    """Stencils ride an indirect SSR stream: always fast-path-rejected."""
    spec, _ = get_stencil("j3d27pt")
    assert_equivalent(build_stencil(spec, tiny_grid, variant))


def test_stencil_reference_kernel_small_grid(small_grid):
    spec, _ = get_stencil("box3d1r")
    assert_equivalent(
        build_stencil(spec, small_grid, Variant.from_label("Chaining+")))


def test_frep_inner_equivalent():
    assert_equivalent(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fld fa2, 16(a0)
    li t0, 5
    frep.i t0, 1
    fadd.d fa0, fa0, fa1
    fmul.d fa2, fa2, fa1
    li a1, {OUT}
    fsd fa0, 0(a1)
    fsd fa2, 8(a1)
    ebreak
""", loader=lambda c: c.load_f64(DATA, np.array([0.5, 2.0, 1.0])))


def test_frep_staggered_equivalent():
    assert_equivalent(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fld fa2, 16(a0)
    li t0, 7
    frep.o t0, 0, 1, 0b011
    fadd.d fa0, fa0, fa2
    li a1, {OUT}
    fsd fa0, 0(a1)
    fsd fa1, 8(a1)
    ebreak
""", loader=lambda c: c.load_f64(DATA, np.array([1.0, 10.0, 0.125])))


def test_fp_load_store_loop_equivalent():
    # fld/fsd traffic keeps the FP LSU busy: rejected by the fast path,
    # hot on the micro-op engine.
    assert_equivalent(f"""
    li a0, {DATA}
    li a1, {OUT}
    li t1, 0
loop:
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fmadd.d fa2, fa0, fa1, fa0
    fsd fa2, 0(a1)
    addi a0, a0, 16
    addi a1, a1, 8
    addi t1, t1, 1
    li t2, 24
    bne t1, t2, loop
    ebreak
""", loader=lambda c: c.load_f64(
        DATA, np.linspace(0.5, 12.0, 48)))


def test_dma_drain_equivalent_and_fast_forwarded():
    source = f"""
    li x1, {DATA}
    li x2, {OUT}
    li x3, 2048
    dmsrc x1
    dmdst x2
    dmcpy x4, x3
    ebreak
"""
    ref = assert_equivalent(
        source,
        loader=lambda c: c.load_f64(DATA, np.arange(256, dtype=np.float64)))
    # The v2 engine must actually skip the drain, not just match it.
    v2, _ = run_engine(
        source, "scalar-v2",
        loader=lambda c: c.load_f64(DATA, np.arange(256, dtype=np.float64)))
    assert v2.ff_stats["cycles"] > ref.cycle // 2


def test_multicore_barrier_equivalent():
    assert_equivalent(f"""
    csrr a0, mhartid
    li t6, {OUT}
    slli a1, a0, 3
    add t6, t6, a1
    beq a0, x0, hart0
    li t0, 30
spin:
    addi t0, t0, -1
    bne t0, x0, spin
hart0:
    li a2, {DATA}
    fld fa0, 0(a2)
    fcvt.d.w fa1, a0
    fadd.d fa0, fa0, fa1
    csrrwi x0, 0x7C6, 1
    fsd fa0, 0(t6)
    ebreak
""", num_cores=3,
        loader=lambda c: c.load_f64(DATA, np.array([40.0])))


def test_sync_wait_spans_equivalent():
    # Back-to-back FP->int syncs with long-latency producers: the core
    # sits in sync-wait spans the fast-forwarder should jump.
    assert_equivalent(f"""
    li a0, {DATA}
    fld fa0, 0(a0)
    fld fa1, 8(a0)
    fdiv.d fa2, fa0, fa1
    feq.d t1, fa2, fa2
    fsqrt.d fa3, fa2
    fcvt.w.d t2, fa3
    add t3, t1, t2
    li a1, {OUT}
    sw t3, 0(a1)
    ebreak
""", loader=lambda c: c.load_f64(DATA, np.array([81.0, 1.0])))


def test_vecop_frep_traced_equivalent():
    build = build_vecop(n=24, variant=VecopVariant.CHAINING,
                        loop_mode="frep")
    assert_equivalent(build, trace=True, engines=("scalar-v2", "auto"))


def test_binary_fetch_equivalent():
    spec, _ = get_stencil("j2d5pt")
    from repro.kernels.layout import Grid3d

    build = build_stencil(spec, Grid3d(nz=1, ny=4, nx=16),
                          Variant.from_label("Chaining"))
    assert_equivalent(build, fetch_from_memory=True)


def test_engine_composition_and_validation():
    cfg = CoreConfig(engine="scalar-v2")
    cfg.validate()
    assert cfg.uses_uops
    cluster = Cluster("ebreak", cfg=cfg)
    assert cluster.fastpath is None           # never the vectorized path
    auto = Cluster("ebreak", cfg=CoreConfig(engine="auto"))
    assert auto.fastpath is not None          # composed with it
    with pytest.raises(ValueError):
        CoreConfig(engine="scalar-v3").validate()


# -- lockstep fuzz -----------------------------------------------------------

_FP_OPS2 = ("fadd.d", "fsub.d", "fmul.d", "fmin.d", "fmax.d", "fsgnj.d")
_FP_OPS3 = ("fmadd.d", "fmsub.d", "fnmadd.d", "fnmsub.d")
_INT_OPS = ("add", "sub", "and", "or", "xor", "slt", "sltu", "mul",
            "mulh", "divu", "rem")
_IMM_OPS = ("addi", "andi", "ori", "xori", "slti", "slli", "srli", "srai")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


def _random_program(rng: random.Random) -> str:
    """A random terminating program over a safe instruction subset.

    Integer regs x1..x7 compute, x8/x9 hold data bases, FP regs f3..f9
    compute with f20..f23 optionally chain-enabled; branches only jump
    forward, so the program always reaches ``ebreak``.
    """
    lines = [f"li x8, {DATA}", f"li x9, {OUT}"]
    if rng.random() < 0.6:
        mask = 0
        for reg in (20, 21, 22, 23):
            if rng.random() < 0.5:
                mask |= 1 << reg
        lines.append(f"li x7, {mask}")
        lines.append("csrrw x0, 0x7C3, x7")
    label = 0
    pending_label = None
    for _ in range(rng.randrange(10, 60)):
        if pending_label is not None and rng.random() < 0.7:
            lines.append(f"{pending_label}:")
            pending_label = None
        kind = rng.random()
        r = lambda: rng.randrange(1, 8)          # noqa: E731
        f = lambda: rng.randrange(3, 10)         # noqa: E731
        fc = lambda: rng.randrange(20, 24)       # noqa: E731
        if kind < 0.25:
            lines.append(f"{rng.choice(_INT_OPS)} x{r()}, x{r()}, x{r()}")
        elif kind < 0.40:
            lines.append(f"{rng.choice(_IMM_OPS)} x{r()}, x{r()}, "
                         f"{rng.randrange(0, 16)}")
        elif kind < 0.50:
            off = 4 * rng.randrange(0, 32)
            if rng.random() < 0.5:
                lines.append(f"lw x{r()}, {off}(x8)")
            else:
                lines.append(f"sw x{r()}, {off}(x8)")
        elif kind < 0.60:
            off = 8 * rng.randrange(0, 16)
            if rng.random() < 0.5:
                lines.append(f"fld f{f()}, {off}(x8)")
            else:
                lines.append(f"fsd f{f()}, {off}(x9)")
        elif kind < 0.78:
            dst = fc() if rng.random() < 0.3 else f()
            s1 = fc() if rng.random() < 0.2 else f()
            if rng.random() < 0.3:
                lines.append(f"{rng.choice(_FP_OPS3)} f{dst}, f{s1}, "
                             f"f{f()}, f{f()}")
            else:
                lines.append(f"{rng.choice(_FP_OPS2)} f{dst}, f{s1}, "
                             f"f{f()}")
        elif kind < 0.84:
            lines.append(f"feq.d x{r()}, f{f()}, f{f()}")
        elif kind < 0.90 and pending_label is None:
            pending_label = f"fwd{label}"
            label += 1
            lines.append(f"{rng.choice(_BRANCHES)} x{r()}, x{r()}, "
                         f"{pending_label}")
        elif kind < 0.96:
            body = rng.randrange(1, 4)
            iters = rng.randrange(0, 6)
            mode = rng.choice(("frep.o", "frep.i"))
            stagger = ", 1, 0b0011" if rng.random() < 0.3 else ""
            lines.append(f"li x6, {iters}")
            lines.append(f"{mode} x6, {body - 1}{stagger}")
            for _ in range(body):
                lines.append(f"{rng.choice(_FP_OPS2)} f{f()}, f{f()}, "
                             f"f{f()}")
        else:
            lines.append(f"csrr x{r()}, mcycle")
    if pending_label is not None:
        lines.append(f"{pending_label}:")
    lines.append("ebreak")
    return "\n".join(lines)


def _lockstep_state(cluster: Cluster) -> tuple:
    core, fp = cluster.core, cluster.fp
    return (
        cluster.cycle, core.pc, core.halted, core.stall_until,
        core.waiting_sync is not None, core.barrier_wait,
        tuple(core.regs.values), tuple(core.regs.ready_cycle),
        core._pending_load_rd,
        tuple(fp.fpregs.values), tuple(fp.fpregs.busy),
        fp.chain.mask, tuple(fp.chain.valid), fp.chain.pushes,
        fp.chain.pops, fp.chain.backpressure_events,
        len(fp.sequencer.queue), fp.sequencer._active,
        fp.sequencer.position if fp.sequencer._active else -1,
        tuple((op.completes_at, op.dest, op.dest_is_ssr, op.sync,
               op.value) for op in fp.pipe.in_flight),
        fp.sync_ready, fp._sync_value,
        fp.lsu.loads, fp.lsu.stores,
        cluster.perf.counter_state(),
        cluster.tcdm.total_accesses, cluster.tcdm.total_conflicts,
        bytes(cluster.mem._data[DATA:OUT + 0x400]),
    )


@pytest.mark.parametrize("seed", range(25))
def test_fuzz_lockstep_per_cycle(seed):
    rng = random.Random(1234 + seed)
    source = _random_program(rng)
    data = np.array([rng.uniform(-4, 4) for _ in range(128)])

    clusters = []
    for engine in ("scalar", "scalar-v2"):
        cluster = Cluster(source, cfg=CoreConfig(engine=engine))
        cluster.load_f64(DATA, data)
        clusters.append(cluster)
    ref, v2 = clusters
    for cycle in range(500):
        ref.step()
        v2.step()
        assert _lockstep_state(ref) == _lockstep_state(v2), \
            f"seed {seed} diverged at cycle {cycle}\n{source}"


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_run_to_completion_with_fast_forward(seed):
    """End-to-end run() comparison: exercises the fast-forwarder too."""
    rng = random.Random(99 + seed)
    source = _random_program(rng)
    data = np.array([rng.uniform(-4, 4) for _ in range(128)])

    digests = []
    for engine in ("scalar", "scalar-v2"):
        cluster = Cluster(source, cfg=CoreConfig(engine=engine))
        cluster.load_f64(DATA, data)
        try:
            cluster.run(max_cycles=5_000)
            outcome = "done"
        except Exception as exc:   # deadlocks must match too
            outcome = type(exc).__name__
        digests.append((outcome, machine_digest(cluster)))
    assert digests[0] == digests[1]
