"""Variant enum property tests."""

from repro.kernels.variants import VARIANT_ORDER, Variant


def test_labels_match_paper():
    assert [v.label for v in VARIANT_ORDER] == \
        ["Base--", "Base-", "Base", "Chaining", "Chaining+"]


def test_chaining_flags():
    assert not Variant.BASE.uses_chaining
    assert Variant.CHAINING.uses_chaining
    assert Variant.CHAINING_PLUS.uses_chaining


def test_coefficient_source_is_exclusive():
    for variant in Variant:
        # Coefficients come from exactly one place: SSR, RF, or
        # explicit loads (the fallback when both flags are false).
        assert not (variant.coeffs_via_ssr and variant.coeffs_in_rf)


def test_paper_variant_table():
    # The table from section III, row by row.
    expect = {
        Variant.BASE_MM: (False, False, False),
        Variant.BASE_M: (False, False, True),
        Variant.BASE: (True, False, False),
        Variant.CHAINING: (False, True, False),
        Variant.CHAINING_PLUS: (False, True, True),
    }
    for variant, (via_ssr, in_rf, wb_ssr) in expect.items():
        assert variant.coeffs_via_ssr == via_ssr, variant
        assert variant.coeffs_in_rf == in_rf, variant
        assert variant.writeback_via_ssr == wb_ssr, variant
