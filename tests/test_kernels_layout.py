"""Grid layout arithmetic tests."""

import numpy as np
import pytest

from repro.kernels.layout import DOUBLE, Grid3d


def test_shapes():
    grid = Grid3d(nz=2, ny=3, nx=8, radius=1)
    assert grid.shape_interior == (2, 3, 8)
    assert grid.shape_padded == (4, 5, 10)
    assert grid.points == 48


def test_strides():
    grid = Grid3d(nz=2, ny=3, nx=8)
    assert grid.row_bytes == 10 * DOUBLE
    assert grid.plane_bytes == 5 * 10 * DOUBLE
    assert grid.total_bytes == 4 * 5 * 10 * DOUBLE


def test_element_and_interior_offsets():
    grid = Grid3d(nz=2, ny=3, nx=8)
    assert grid.element_offset(0, 0, 0) == 0
    assert grid.element_offset(0, 0, 1) == DOUBLE
    assert grid.element_offset(0, 1, 0) == grid.row_bytes
    assert grid.element_offset(1, 0, 0) == grid.plane_bytes
    # Interior (0,0,0) sits one halo cell in on every axis.
    assert grid.interior_offset(0, 0, 0) == \
        grid.plane_bytes + grid.row_bytes + DOUBLE


def test_linear_index_consistent_with_offset():
    grid = Grid3d(nz=2, ny=3, nx=8)
    for (z, y, x) in [(0, 0, 0), (1, 2, 3), (3, 4, 9)]:
        assert grid.linear_index(z, y, x) * DOUBLE == \
            grid.element_offset(z, y, x)


def test_make_input_deterministic():
    grid = Grid3d(nz=2, ny=3, nx=8)
    a = grid.make_input(seed=9)
    b = grid.make_input(seed=9)
    assert np.array_equal(a, b)
    assert a.shape == grid.shape_padded


def test_extract_interior():
    grid = Grid3d(nz=1, ny=2, nx=3)
    padded = np.arange(np.prod(grid.shape_padded), dtype=float) \
        .reshape(grid.shape_padded)
    interior = grid.extract_interior(padded)
    assert interior.shape == grid.shape_interior
    assert interior[0, 0, 0] == padded[1, 1, 1]


def test_validation():
    with pytest.raises(ValueError):
        Grid3d(nz=0, ny=3, nx=8)
    with pytest.raises(ValueError):
        Grid3d(nz=1, ny=1, nx=1, radius=0)
