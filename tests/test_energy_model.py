"""Energy model tests: accounting identities and variant-level physics."""

import pytest

from repro.core import Cluster, CoreConfig
from repro.energy.model import EnergyModel, EnergyParams
from repro.eval.runner import run_build
from repro.kernels.stencil import box3d1r
from repro.kernels.stencil_codegen import build_stencil
from repro.kernels.variants import Variant


def run_variant(variant, grid):
    build = build_stencil(box3d1r(), grid, variant)
    return run_build(build)


def test_breakdown_sums_to_total(tiny_grid):
    result = run_variant(Variant.BASE, tiny_grid)
    report = result.energy
    assert report.total_pj == pytest.approx(sum(report.breakdown.values()))
    assert report.pj_per_cycle > 0
    assert 0 < report.fraction("tcdm") < 1


def test_power_conversion():
    from repro.energy.model import EnergyReport

    report = EnergyReport(total_pj=60_000.0, cycles=1000,
                          clock_hz=1e9, breakdown={})
    # 60 pJ/cycle at 1 GHz = 60 mW.
    assert report.power_mw == pytest.approx(60.0)
    assert report.pj_per_cycle == pytest.approx(60.0)


def test_zero_cycle_report_safe():
    from repro.energy.model import EnergyReport

    report = EnergyReport(0.0, 0, 1e9, {})
    assert report.power_mw == 0.0
    assert report.pj_per_cycle == 0.0
    assert report.fraction("tcdm") == 0.0


def test_power_in_papers_ballpark(small_grid):
    # The calibration target: around 60 mW at 1 GHz (paper Fig. 3 right).
    result = run_variant(Variant.BASE, small_grid)
    assert 40.0 < result.power_mw < 80.0


def test_chaining_removes_coefficient_stream_energy(small_grid):
    base = run_variant(Variant.BASE, small_grid)
    chaining = run_variant(Variant.CHAINING, small_grid)
    # Chaining moves coefficients to the RF: less TCDM energy, a bit
    # more register-file energy, cheap FIFO accesses appear.
    assert chaining.energy.breakdown["tcdm"] < base.energy.breakdown["tcdm"]
    assert chaining.energy.breakdown["chaining"] > 0
    assert base.energy.breakdown["chaining"] == 0


def test_chaining_improves_energy_efficiency(small_grid):
    base = run_variant(Variant.BASE, small_grid)
    chaining = run_variant(Variant.CHAINING, small_grid)
    plus = run_variant(Variant.CHAINING_PLUS, small_grid)
    assert chaining.gflops_per_watt > base.gflops_per_watt
    assert plus.gflops_per_watt > base.gflops_per_watt


def test_custom_params_scale():
    params = EnergyParams()
    params.static_pj_per_cycle = 0.0
    cluster = Cluster("nop\nnop\nebreak")
    cluster.run()
    report = EnergyModel(CoreConfig(), params).report(cluster)
    assert report.breakdown["static"] == 0.0
    report_default = EnergyModel(CoreConfig()).report(cluster)
    assert report_default.breakdown["static"] > 0


def test_idle_cluster_energy_is_static_only():
    cluster = Cluster("ebreak")
    cluster.run()
    report = EnergyModel(CoreConfig()).report(cluster)
    nonstatic = {k: v for k, v in report.breakdown.items()
                 if k not in ("static", "int_core") and v > 0}
    assert not nonstatic


def test_fpu_energy_tracks_op_mix():
    prog = """
    li a0, 0x2000
    fld fa0, 0(a0)
    fadd.d fa1, fa0, fa0
    fdiv.d fa2, fa0, fa0
    ebreak
"""
    cluster = Cluster(prog)
    cluster.mem.write_f64(0x2000, 2.0)
    cluster.run()
    params = EnergyParams()
    report = EnergyModel(CoreConfig(), params).report(cluster)
    expected = params.fpu_op["fpu_fp_add"] + params.fpu_op["fpu_fp_div"]
    assert report.breakdown["fpu"] == pytest.approx(expected)
