"""``ResultCache.prune``: LRU shard eviction with failure-log hygiene.

The subtle invariant: a success record hides any older failure under
the same key (``get_failure`` masks it).  Evicting the success without
also dropping the on-disk failure line would resurface a phantom
failure -- with its accumulated retry-budget debt -- on the next load.
"""

import json
import os
import time

import pytest

from repro import __version__
from repro.cli import main as cli_main
from repro.sweep.cache import ResultCache, point_key
from repro.sweep.runner import execute_point
from repro.sweep.spec import make_point


def _fill(cache, ns):
    """One cached vecop result per n; returns {n: (key, shard_path)}."""
    laid = {}
    for n in ns:
        point = make_point("vecop", "baseline", n=n)
        key = point_key(point, __version__)
        cache.put(key, point, execute_point(point), 0.1, __version__)
        laid[n] = (key, cache._shard_path(key))
    return laid


def _age(path, days):
    stamp = time.time() - days * 86400.0
    os.utime(path, (stamp, stamp))


def test_prune_needs_a_budget(tmp_path):
    with pytest.raises(ValueError, match="max_bytes"):
        ResultCache(tmp_path / "c").prune()


def test_prune_refuses_flat_stores(tmp_path):
    cache = ResultCache(tmp_path / "c", layout="flat")
    _fill(cache, [16])
    with pytest.raises(ValueError, match="sharded"):
        ResultCache(tmp_path / "c").prune(max_age_days=1)


def test_prune_by_age_evicts_cold_shards(tmp_path):
    cache = ResultCache(tmp_path / "c")
    laid = _fill(cache, [16, 32, 48, 64])
    # pick two entries guaranteed to live in different shard files
    shards = {path for _, path in laid.values()}
    assert len(shards) >= 2, "need distinct shards for this test"
    cold_key, cold_path = laid[16]
    _age(cold_path, days=30)

    report = cache.prune(max_age_days=7)
    assert cold_path.name in report["evicted_shards"]
    assert not cold_path.exists()
    assert cache.get(cold_key) is None
    # warm keys survive in memory and on reload
    reopened = ResultCache(tmp_path / "c")
    for n, (key, path) in laid.items():
        if path == cold_path:
            assert reopened.get(key) is None
        else:
            assert reopened.get(key) is not None


def test_prune_by_bytes_is_lru_by_mtime(tmp_path):
    cache = ResultCache(tmp_path / "c")
    laid = _fill(cache, [16, 32, 48, 64])
    paths = sorted({path for _, path in laid.values()})
    assert len(paths) >= 3, "need >= 3 shards for this test"
    for rank, path in enumerate(paths):
        _age(path, days=len(paths) - rank)  # paths[0] is the coldest
    newest = paths[-1]

    report = cache.prune(max_bytes=newest.stat().st_size)
    assert newest.exists()
    assert report["kept_shards"] == 1
    evicted = set(report["evicted_shards"])
    assert evicted == {p.name for p in paths[:-1]}


def test_prune_dry_run_touches_nothing(tmp_path):
    cache = ResultCache(tmp_path / "c")
    laid = _fill(cache, [16, 32, 48])
    for _, path in laid.values():
        _age(path, days=30)
    report = cache.prune(max_age_days=1, dry_run=True)
    assert report["dry_run"] is True
    assert report["evicted_records"] == 3
    for n, (key, path) in laid.items():
        assert path.exists()
        assert cache.get(key) is not None
    assert len(ResultCache(tmp_path / "c")) == 3


def test_prune_drops_superseded_failures_with_their_success(tmp_path):
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "baseline", n=16)
    key = point_key(point, __version__)
    cache.put_failure(key, point, "timeout", "slow", 1.0, __version__)
    cache.put(key, point, execute_point(point), 0.1, __version__)
    assert cache.get_failure(key) is None  # masked by the success

    other = make_point("vecop", "baseline", n=32)
    other_key = point_key(other, __version__)
    cache.put_failure(other_key, other, "error", "boom", 0.5,
                      __version__)
    if cache._shard_path(other_key) == cache._shard_path(key):
        pytest.skip("keys collided into one shard; invariant untestable")

    _age(cache._shard_path(key), days=30)
    report = cache.prune(max_age_days=7)
    assert report["dropped_failures"] == 1

    reopened = ResultCache(tmp_path / "c")
    # no phantom: the key is a plain miss, not a failed-with-attempts
    assert reopened.get(key) is None
    assert reopened.get_failure(key) is None
    # unrelated failures keep their record and retry-budget history
    kept = reopened.get_failure(other_key)
    assert kept is not None and kept["status"] == "error"


def test_prune_cli_dry_run_and_json(tmp_path, capsys):
    cache = ResultCache(tmp_path / "c")
    laid = _fill(cache, [16, 32])
    for _, path in laid.values():
        _age(path, days=30)
    out = tmp_path / "report.json"
    code = cli_main(["cache", "prune", "--cache-dir",
                     str(tmp_path / "c"), "--max-age-days", "7",
                     "--dry-run", "--json", str(out)])
    assert code == 0
    assert "would evict" in capsys.readouterr().out
    report = json.loads(out.read_text())
    assert report["dry_run"] is True
    assert report["evicted_records"] == 2
    assert len(ResultCache(tmp_path / "c")) == 2

    code = cli_main(["cache", "prune", "--cache-dir",
                     str(tmp_path / "c"), "--max-age-days", "7"])
    assert code == 0
    assert "evicted" in capsys.readouterr().out
    assert len(ResultCache(tmp_path / "c")) == 0


def test_prune_cli_requires_a_budget(tmp_path):
    with pytest.raises(SystemExit, match="max-bytes"):
        cli_main(["cache", "prune", "--cache-dir", str(tmp_path / "c")])
