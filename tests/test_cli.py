"""CLI tests (fast paths only; fig3/claims are covered by benchmarks)."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "box3d1r" in out
    assert "Chaining+" in out


def test_fig1_with_json(tmp_path, capsys):
    path = tmp_path / "fig1.json"
    assert main(["fig1", "--n", "64", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out
    data = json.loads(path.read_text())
    assert set(data) == {"baseline", "unrolled", "chaining"}
    assert data["chaining"]["correct"]
    assert data["chaining"]["fpu_utilization"] > \
        data["baseline"]["fpu_utilization"]


def test_run_single_kernel(tmp_path, capsys):
    path = tmp_path / "run.json"
    rc = main(["run", "--kernel", "box3d1r", "--variant", "Chaining+",
               "--nz", "2", "--ny", "3", "--nx", "8",
               "--json", str(path)])
    assert rc == 0
    record = json.loads(path.read_text())
    assert record["correct"]
    assert record["fpu_utilization"] > 0.5


def test_run_unknown_variant_exits():
    with pytest.raises(SystemExit, match="unknown variant"):
        main(["run", "--variant", "Turbo"])


def test_run_partial_grid_exits():
    with pytest.raises(SystemExit, match="together"):
        main(["run", "--nz", "2"])


def test_trace_chaining(capsys):
    assert main(["trace", "--variant", "chaining", "--n", "8",
                 "--slots", "12"]) == 0
    out = capsys.readouterr().out
    assert "fp issue" in out
    assert "fifo" in out          # dataflow section for chaining


def test_trace_baseline_no_dataflow(capsys):
    assert main(["trace", "--variant", "baseline", "--n", "8"]) == 0
    out = capsys.readouterr().out
    assert "fifo" not in out


def test_area(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "chaining overhead" in out
    assert "<2%" in out
