"""CLI tests (fast paths only; fig3/claims are covered by benchmarks)."""

import json

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "box3d1r" in out
    assert "Chaining+" in out


def test_fig1_with_json(tmp_path, capsys):
    path = tmp_path / "fig1.json"
    assert main(["fig1", "--n", "64", "--json", str(path)]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1" in out
    data = json.loads(path.read_text())
    assert set(data) == {"baseline", "unrolled", "chaining"}
    assert data["chaining"]["correct"]
    assert data["chaining"]["fpu_utilization"] > \
        data["baseline"]["fpu_utilization"]


def test_run_single_kernel(tmp_path, capsys):
    path = tmp_path / "run.json"
    rc = main(["run", "--kernel", "box3d1r", "--variant", "Chaining+",
               "--nz", "2", "--ny", "3", "--nx", "8",
               "--json", str(path)])
    assert rc == 0
    record = json.loads(path.read_text())
    assert record["correct"]
    assert record["fpu_utilization"] > 0.5


def test_run_unknown_variant_exits():
    with pytest.raises(SystemExit, match="unknown variant"):
        main(["run", "--variant", "Turbo"])


def test_run_partial_grid_exits():
    with pytest.raises(SystemExit, match="together"):
        main(["run", "--nz", "2"])


def test_profile_prints_hotspot_tables(capsys):
    rc = main(["profile", "--kernel", "box3d1r", "--variant", "Chaining+",
               "--nz", "2", "--ny", "3", "--nx", "8", "--top", "5",
               "--engine", "scalar-v2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "engine=scalar-v2" in out
    assert "correct=True" in out
    assert "top 5 by cumulative" in out
    assert "top 5 by tottime" in out
    assert "ncalls" in out


def test_profile_partial_grid_exits():
    with pytest.raises(SystemExit, match="together"):
        main(["profile", "--nz", "2"])


def test_trace_chaining(capsys):
    assert main(["trace", "--variant", "chaining", "--n", "8",
                 "--slots", "12"]) == 0
    out = capsys.readouterr().out
    assert "fp issue" in out
    assert "fifo" in out          # dataflow section for chaining


def test_trace_baseline_no_dataflow(capsys):
    assert main(["trace", "--variant", "baseline", "--n", "8"]) == 0
    out = capsys.readouterr().out
    assert "fifo" not in out


def test_area(capsys):
    assert main(["area"]) == 0
    out = capsys.readouterr().out
    assert "chaining overhead" in out
    assert "<2%" in out


def test_area_json(tmp_path, capsys):
    path = tmp_path / "area.json"
    assert main(["area", "--json", str(path)]) == 0
    data = json.loads(path.read_text())
    assert 0 < data["overhead_core_percent"] < 2.0
    assert data["breakdown_kge"]


def test_list_names_sweep_presets(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "sweep presets:" in out
    assert "smoke" in out


SWEEP_SPEC = {
    "name": "cli-smoke",
    "kernels": ["vecop"],
    "variants": ["baseline", "chaining"],
    "ns": [16, 32],
}


def test_sweep_spec_file_cold_then_warm(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SWEEP_SPEC))
    cache = tmp_path / "cache"
    out_json = tmp_path / "out.json"

    rc = main(["sweep", "--spec", str(spec), "--cache-dir", str(cache),
               "--workers", "0", "--json", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cli-smoke" in out
    assert "0 cache hits" in out
    data = json.loads(out_json.read_text())
    assert data["points"] == 4
    assert data["cache_hits"] == 0
    assert all(o["status"] == "ok" for o in data["outcomes"])
    # New stores use the directory-sharded layout.
    assert list((cache / "shards").glob("*.jsonl"))

    rc = main(["sweep", "--spec", str(spec), "--cache-dir", str(cache),
               "--workers", "0", "--json", str(out_json)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "4 cache hits (100%)" in out
    warm = json.loads(out_json.read_text())
    assert warm["cache_hits"] == 4
    cold_utils = [o["result"]["fpu_utilization"] for o in data["outcomes"]]
    warm_utils = [o["result"]["fpu_utilization"] for o in warm["outcomes"]]
    assert cold_utils == warm_utils


def test_sweep_csv_and_baseline_table(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SWEEP_SPEC))
    out_csv = tmp_path / "out.csv"
    rc = main(["sweep", "--spec", str(spec), "--no-cache", "--quiet",
               "--workers", "0", "--baseline", "baseline",
               "--csv", str(out_csv)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "vs. baseline 'baseline'" in out
    lines = out_csv.read_text().strip().splitlines()
    assert len(lines) == 1 + 4
    assert lines[0].startswith("kernel,variant,grid")


def test_sweep_failure_sets_exit_code(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "name": "bad", "kernels": ["vecop"], "variants": ["chaining"],
        "ns": [16, 17],  # 17 is not a multiple of depth+1 -> error
    }))
    rc = main(["sweep", "--spec", str(spec), "--no-cache", "--quiet",
               "--workers", "0"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "1 failed" in out


def test_sweep_argument_validation(tmp_path):
    with pytest.raises(SystemExit, match="exactly one"):
        main(["sweep"])
    with pytest.raises(SystemExit, match="unknown preset"):
        main(["sweep", "--preset", "nope"])
    with pytest.raises(SystemExit, match="bad spec"):
        main(["sweep", "--spec", str(tmp_path / "missing.json")])
    # Bad --baseline/--metric must fail BEFORE any simulation runs.
    with pytest.raises(SystemExit, match="unknown variant"):
        main(["sweep", "--preset", "fig3", "--baseline", "Turbo"])
    with pytest.raises(SystemExit, match="unknown metric"):
        main(["sweep", "--preset", "fig3", "--baseline", "Base",
              "--metric", "region_cycle"])
    # --metric is validated even without --baseline.
    with pytest.raises(SystemExit, match="unknown metric"):
        main(["sweep", "--preset", "fig3", "--metric", "bogus"])


def test_sweep_baseline_is_case_insensitive(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps({
        "kernels": ["box3d1r"], "variants": ["Base", "Chaining+"],
        "grids": [[2, 3, 8]],
    }))
    rc = main(["sweep", "--spec", str(spec), "--no-cache", "--quiet",
               "--workers", "0", "--baseline", "base"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "vs. baseline 'Base'" in out  # normalized, not dropped


def test_sweep_json_surfaces_campaign_summary(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SWEEP_SPEC))
    out_json = tmp_path / "out.json"
    cache = tmp_path / "cache"
    assert main(["sweep", "--spec", str(spec), "--cache-dir", str(cache),
                 "--workers", "0", "--json", str(out_json)]) == 0
    assert main(["sweep", "--spec", str(spec), "--cache-dir", str(cache),
                 "--workers", "0", "--json", str(out_json)]) == 0
    data = json.loads(out_json.read_text())
    assert data["cached_count"] == 4
    assert data["hit_rate"] == 1.0
    assert data["ok"] == 4
    assert data["errors"] == 0 and data["timeouts"] == 0
    assert data["summary"]["points"] == 4
    assert data["summary"]["hit_rate"] == 1.0


def test_sweep_progress_meter(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SWEEP_SPEC))
    assert main(["sweep", "--spec", str(spec), "--no-cache",
                 "--workers", "0", "--progress"]) == 0
    captured = capsys.readouterr()
    assert "[  4/4] 100%" in captured.err
    assert "eta" in captured.err and "cache" in captured.err
    assert "[  1/4]" not in captured.out  # per-point lines replaced


def test_sweep_obs_out_exports_trace_and_metrics(tmp_path, capsys):
    from repro import obs

    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(SWEEP_SPEC))
    obs_dir = tmp_path / "obs"
    assert main(["sweep", "--spec", str(spec), "--no-cache",
                 "--workers", "0", "--quiet",
                 "--obs-out", str(obs_dir)]) == 0
    assert not obs.is_enabled()  # CLI tears telemetry down afterwards
    out = capsys.readouterr().out
    assert "trace.json" in out and "metrics.json" in out
    doc = json.loads((obs_dir / "trace.json").read_text())
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] != "M"}
    assert {"Session.map", "sweep.point", "execute"} <= names
    metrics = json.loads((obs_dir / "metrics.json").read_text())
    assert metrics["campaign"]["points"] == 4
    assert "counters" in metrics["metrics"]


def test_trace_perfetto_export(tmp_path, capsys):
    path = tmp_path / "issue.json"
    assert main(["trace", "--variant", "chaining", "--n", "8",
                 "--perfetto", str(path)]) == 0
    assert "wrote Perfetto trace" in capsys.readouterr().out
    doc = json.loads(path.read_text())
    cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] != "M"}
    assert any(c.startswith("fp.") for c in cats)
    assert any(c.startswith("int.") for c in cats)


# -- audit ----------------------------------------------------------------


AUDIT_SPEC = {
    "name": "audit-smoke",
    "kernels": ["vecop"],
    "variants": ["baseline", "chaining"],
    "ns": [16, 32],
}


def _write_audit_spec(tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text(json.dumps(AUDIT_SPEC))
    return spec


def test_audit_cold_then_backfill_then_complete(tmp_path, capsys):
    spec = _write_audit_spec(tmp_path)
    cache = tmp_path / "cache"
    gaps_json = tmp_path / "gaps.json"

    # Nothing run yet: every point is missing, exit code 1.
    rc = main(["audit", "--spec", str(spec), "--cache-dir", str(cache),
               "--json", str(gaps_json)])
    assert rc == 1
    report = json.loads(gaps_json.read_text())
    assert report["schema"] == "repro-audit/v1"
    assert report["counts"]["missing"] == report["total"] == 4
    assert report["coverage"] == 0.0
    out = capsys.readouterr().out
    assert "coverage 0.0%" in out
    assert "missing" in out

    # --backfill simulates exactly the gaps and exits 0.
    bf_json = tmp_path / "bf.json"
    rc = main(["audit", "--spec", str(spec), "--cache-dir", str(cache),
               "--workers", "0", "--backfill", "--json", str(bf_json)])
    assert rc == 0
    payload = json.loads(bf_json.read_text())
    assert payload["backfill"]["planned"] == 4
    assert payload["backfill"]["executed"]["ok"] == 4
    assert payload["backfill"]["executed"]["cached_count"] == 0
    assert payload["post"]["complete"] and payload["post"]["coverage"] == 1.0
    capsys.readouterr()

    # The campaign is now complete: audit exits 0 at 100% coverage.
    rc = main(["audit", "--spec", str(spec), "--cache-dir", str(cache)])
    assert rc == 0
    assert "coverage 100.0%" in capsys.readouterr().out


def test_audit_dry_run_plans_without_simulating(tmp_path, capsys):
    spec = _write_audit_spec(tmp_path)
    cache = tmp_path / "cache"
    rc = main(["audit", "--spec", str(spec), "--cache-dir", str(cache),
               "--dry-run"])
    assert rc == 1                      # still incomplete: dry run
    out = capsys.readouterr().out
    assert "backfill plan" in out
    assert not (cache / "shards").exists()  # nothing was simulated


def test_audit_csv_gap_report(tmp_path):
    import csv as csv_mod

    spec = _write_audit_spec(tmp_path)
    out_csv = tmp_path / "audit.csv"
    main(["audit", "--spec", str(spec),
          "--cache-dir", str(tmp_path / "cache"), "--quiet",
          "--csv", str(out_csv)])
    rows = list(csv_mod.DictReader(out_csv.read_text().splitlines()))
    assert len(rows) == 4
    assert set(rows[0]) == {"label", "kernel", "variant", "engine",
                            "num_clusters", "key", "status", "detail",
                            "attempts"}
    assert all(row["status"] == "missing" for row in rows)


def test_audit_verify_store_only_mode(tmp_path, capsys):
    spec = _write_audit_spec(tmp_path)
    cache = tmp_path / "cache"
    assert main(["sweep", "--spec", str(spec), "--cache-dir", str(cache),
                 "--workers", "0", "--quiet"]) == 0
    capsys.readouterr()
    out_json = tmp_path / "verify.json"
    rc = main(["audit", "--verify-store", "--cache-dir", str(cache),
               "--json", str(out_json)])
    assert rc == 0
    assert "store integrity: ok" in capsys.readouterr().out
    report = json.loads(out_json.read_text())["verify"]
    assert report["ok"] and report["records"] == 4


def test_audit_migrate_store_then_audit_is_complete(tmp_path, capsys):
    from repro.api import Session
    from repro.sweep.cache import ResultCache
    from repro.sweep.spec import SweepSpec

    spec = _write_audit_spec(tmp_path)
    cache = tmp_path / "cache"
    flat = ResultCache(cache, layout="flat")
    Session(cache=flat, workers=0).map(
        SweepSpec.from_file(str(spec)).points())
    assert (cache / "results.jsonl").exists()

    rc = main(["audit", "--spec", str(spec), "--cache-dir", str(cache),
               "--migrate-store"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "migrated 4 record(s)" in out
    assert "coverage 100.0%" in out
    assert not (cache / "results.jsonl").exists()
    assert list((cache / "shards").glob("*.jsonl"))


def test_audit_argument_validation(tmp_path):
    with pytest.raises(SystemExit, match="exactly one"):
        main(["audit"])
    with pytest.raises(SystemExit, match="unknown preset"):
        main(["audit", "--preset", "nope",
              "--cache-dir", str(tmp_path / "c")])
