"""Session: one front door over every backend, bit-identical to the
pre-redesign entry points.

``tests/data/scaling_metric_goldens.json`` holds the metrics the
**pre-redesign** (v1.4.0) serial sweep runner produced for the full
``scaling`` preset; ``Session.map`` must reproduce them bit-for-bit
(the acceptance contract of the API unification).
"""

import json
from pathlib import Path

import pytest

from repro.api import Result, Session, Workload, workload
from repro.core.config import CoreConfig, SystemConfig
from repro.kernels.variants import Variant
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.sweep.cache import point_key
from repro.sweep.presets import scaling_points
from repro.sweep.runner import SweepRunner

METRIC_GOLDENS = json.loads(
    (Path(__file__).parent / "data" / "scaling_metric_goldens.json")
    .read_text())["results"]


def test_session_map_scaling_preset_matches_pre_redesign():
    points = scaling_points()
    campaign = Session().map(points, parallel=False)
    campaign.raise_on_failure()
    assert len(campaign) == len(METRIC_GOLDENS)
    for outcome, golden in zip(campaign, METRIC_GOLDENS):
        assert outcome.point.canonical() == golden["canonical"]
        res = outcome.result
        assert res.cycles == golden["cycles"]
        assert res.region_cycles == golden["region_cycles"]
        assert res.fpu_utilization == golden["fpu_utilization"]
        assert res.energy.total_pj == golden["total_pj"]
        assert res.power_mw == golden["power_mw"]
        assert res.gflops == golden["gflops"]
        assert res.gflops_per_watt == golden["gflops_per_watt"]
        assert res.cycles_per_point == golden["cycles_per_point"]
        assert dict(res.stalls) == golden["stalls"]


def test_session_key_equals_sweep_runner_key():
    session = Session(engine="scalar-v2")
    from repro import __version__
    for w in (workload("vecop", "chaining", n=32),
              workload("box3d1r", "Base", grid=(2, 3, 8),
                       num_clusters=2)):
        assert session.key(w) == point_key(w, __version__, None,
                                           engine="scalar-v2")


def test_session_run_matches_legacy_entry_points():
    w = workload("box3d1r", "Chaining+", grid=(2, 3, 8))
    new = Session().run(w)
    with pytest.deprecated_call():
        from repro.eval.runner import run_stencil_variant
        old = run_stencil_variant("box3d1r", Variant.CHAINING_PLUS,
                                  grid=w.grid3d())
    assert isinstance(old, Result)  # the shim returns the unified type
    assert (old.cycles, old.region_cycles, old.fpu_utilization,
            old.energy.total_pj, old.stalls) == \
        (new.cycles, new.region_cycles, new.fpu_utilization,
         new.energy.total_pj, new.stalls)


def test_session_run_system_matches_legacy_entry_point():
    w = workload("j3d27pt", "Chaining+", grid=(2, 4, 8),
                 num_clusters=2, iters=2)
    new = Session().run(w)
    with pytest.deprecated_call():
        from repro.eval.system_runner import run_system_stencil
        old = run_system_stencil("j3d27pt", Variant.CHAINING_PLUS,
                                 grid=w.grid3d(), num_clusters=2,
                                 iters=2)
    assert old.cycles == new.cycles
    assert old.system == new.system
    assert old.fpu_utilization == new.fpu_utilization


def test_session_run_accepts_prebuilt_kernels():
    build = build_vecop(n=32, variant=VecopVariant.CHAINING)
    new = Session().run(build)
    with pytest.deprecated_call():
        from repro.eval.runner import run_build
        old = run_build(build_vecop(n=32, variant=VecopVariant.CHAINING))
    assert (old.cycles, old.fpu_utilization) == \
        (new.cycles, new.fpu_utilization)
    with pytest.raises(TypeError, match="Workload or a KernelBuild"):
        Session().run("box3d1r")


def test_session_resolve_picks_the_backend_config():
    session = Session(engine="scalar")
    plain = session.resolve(workload("box3d1r", "Base"))
    assert isinstance(plain, CoreConfig) and plain.engine == "scalar"
    sys_cfg = session.resolve(
        workload("box3d1r", "Base", num_clusters=4,
                 system={"gmem_latency": 99}))
    assert isinstance(sys_cfg, SystemConfig)
    assert sys_cfg.num_clusters == 4
    assert sys_cfg.gmem_latency == 99
    assert sys_cfg.core.engine == "scalar"
    # the workload's own engine override wins over the session's
    own = session.resolve(workload("box3d1r", "Base", engine="fast"))
    assert own.engine == "fast"


def test_session_run_uses_the_cache(tmp_path):
    session = Session(cache=tmp_path / "c")
    w = workload("vecop", "baseline", n=32)
    first = session.run(w)
    second = session.run(w)          # cache replay
    assert second.cycles == first.cycles
    assert second.to_dict() == first.to_dict()
    campaign = session.map([w])      # Session.run and .map share keys
    assert campaign.cached_count == 1


def test_session_map_parallel_widths(tmp_path):
    session = Session(cache=tmp_path / "c", workers=1)
    workloads = [workload("vecop", "baseline", n=n) for n in (16, 32)]
    serial = session.map(workloads, parallel=False)
    assert all(o.ok for o in serial)
    fanned = session.map(workloads, parallel=2)   # hits the cache
    assert fanned.cached_count == 2
    for a, b in zip(serial, fanned):
        assert a.result.cycles == b.result.cycles


def test_session_map_isolates_failures():
    campaign = Session().map([workload("vecop", "chaining", n=16),
                              workload("vecop", "chaining", n=17)])
    assert [o.status for o in campaign] == ["ok", "error"]
    with pytest.raises(RuntimeError, match="n=17"):
        campaign.raise_on_failure()


def test_session_run_propagates_real_exceptions():
    with pytest.raises(ValueError, match="multiple"):
        Session().run(workload("vecop", "chaining", n=17))


def test_builds_must_declare_flops_and_points():
    """The typed throughput inputs are never silently defaulted: a
    builder that omits them is an error, not a wrong 0.0 Gflop/s."""
    build = build_vecop(n=16, variant=VecopVariant.BASELINE)
    del build.meta["flops"]
    with pytest.raises(ValueError, match="must declare flops"):
        Session().run(build)
    # The deprecated shim alone keeps the pre-1.5 leniency (explicit 0)
    # so 1.4-era custom builds survive the deprecation window.
    with pytest.deprecated_call():
        from repro.eval.runner import run_build
        legacy = run_build(build)
    assert legacy.flops == 0 and legacy.gflops == 0.0
    # ... without mutating the caller's build: the new front door still
    # enforces the declaration afterwards.
    assert "flops" not in build.meta
    with pytest.raises(ValueError, match="must declare flops"):
        Session().run(build)


def test_incorrect_results_are_never_cached(tmp_path, monkeypatch):
    """require_correct=False must not poison the shared sweep cache."""
    from repro.api.execute import execute_workload as real_execute

    def incorrect(*args, **kwargs):
        result = real_execute(*args, **kwargs)
        result.correct = False
        return result

    monkeypatch.setattr("repro.api.session.execute_workload", incorrect)
    session = Session(cache=tmp_path / "c")
    w = workload("vecop", "baseline", n=16)
    bad = session.run(w, require_correct=False)
    assert not bad.correct
    assert len(session.cache) == 0   # never stored
    monkeypatch.undo()
    good = session.run(w)            # simulates again, then caches
    assert good.correct and len(session.cache) == 1


def test_session_run_threads_require_correct_to_every_backend():
    # Golden-matching runs succeed either way; the knob must reach the
    # backends (it is how metrics are collected from known-bad runs).
    session = Session()
    for w in (workload("vecop", "baseline", n=16),
              workload("box3d1r", "Base", grid=(2, 3, 8)),
              workload("box3d1r", "Base", grid=(2, 4, 8),
                       num_clusters=2)):
        assert session.run(w, require_correct=False).correct


def test_map_accepts_workload_and_equals_run(tmp_path):
    w = workload("box3d1r", "Base", grid=(2, 3, 8), engine="scalar-v2")
    direct = Session().run(w)
    mapped = Session().map([w]).outcomes[0].result
    assert direct.to_dict() == mapped.to_dict()
    assert isinstance(mapped, Result) and isinstance(w, Workload)


def test_sweep_runner_and_session_map_are_the_same_engine(tmp_path):
    points = [p for p in scaling_points() if p.kernel == "box3d1r"
              and p.num_clusters <= 2][:2]
    runner = SweepRunner(workers=0).run(points)
    mapped = Session().map(points, parallel=False)
    for a, b in zip(runner, mapped):
        assert a.point == b.point
        assert a.result.to_dict() == b.result.to_dict()
