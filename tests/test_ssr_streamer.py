"""SSR streamer (data mover) tests, driven cycle by cycle."""

import numpy as np
import pytest

from repro.mem.memory import Memory
from repro.mem.tcdm import Tcdm
from repro.ssr.config import CfgField, SsrConfigSpace, cfg_addr, \
    split_cfg_addr
from repro.ssr.streamer import SsrStreamer


def make_streamer(fifo_depth=4):
    mem = Memory(1 << 16)
    tcdm = Tcdm(mem, num_banks=8)
    streamer = SsrStreamer(0, tcdm, fifo_depth=fifo_depth)
    return mem, tcdm, streamer


def arm_read(streamer, base, n, stride=8, repeat=0):
    streamer.write_cfg(CfgField.BASE, base)
    streamer.write_cfg(CfgField.BOUND0, n)
    streamer.write_cfg(CfgField.STRIDE0, stride)
    streamer.write_cfg(CfgField.REPEAT, repeat)
    streamer.write_cfg(CfgField.CTRL, 0)


def arm_write(streamer, base, n, stride=8):
    streamer.write_cfg(CfgField.BASE, base)
    streamer.write_cfg(CfgField.BOUND0, n)
    streamer.write_cfg(CfgField.STRIDE0, stride)
    streamer.write_cfg(CfgField.REPEAT, 0)
    streamer.write_cfg(CfgField.CTRL, 1)


def tick(streamer, tcdm, cycles=1):
    for _ in range(cycles):
        streamer.step()
        tcdm.arbitrate()


def test_read_stream_delivers_in_order():
    mem, tcdm, s = make_streamer()
    data = np.arange(8, dtype=np.float64)
    mem.write_array(0x100, data)
    arm_read(s, 0x100, 8)
    out = []
    for _ in range(40):
        tick(s, tcdm)
        while s.can_pop():
            out.append(s.pop())
    assert out == list(data)
    assert s.done


def test_read_stream_prefetch_bounded_by_fifo():
    mem, tcdm, s = make_streamer(fifo_depth=2)
    mem.write_array(0x100, np.arange(16, dtype=np.float64))
    arm_read(s, 0x100, 16)
    tick(s, tcdm, cycles=10)   # no pops at all
    # At most fifo_depth elements buffered (plus none lost).
    assert len(s._fifo) <= 2
    assert s.data_port.reads <= 3


def test_repeat_serves_each_element_multiple_times():
    mem, tcdm, s = make_streamer()
    mem.write_array(0x100, np.array([1.0, 2.0]))
    arm_read(s, 0x100, 2, repeat=2)
    out = []
    for _ in range(30):
        tick(s, tcdm)
        while s.can_pop():
            out.append(s.pop())
    assert out == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
    # Each element is fetched from memory only once.
    assert s.data_port.reads == 2


def test_available_pops_accounting():
    mem, tcdm, s = make_streamer()
    mem.write_array(0x100, np.array([1.0, 2.0]))
    arm_read(s, 0x100, 2, repeat=1)
    for _ in range(10):
        tick(s, tcdm)
    assert s.available_pops() == 4
    s.pop()
    assert s.available_pops() == 3


def test_pop_empty_raises():
    mem, tcdm, s = make_streamer()
    arm_read(s, 0x100, 4)
    with pytest.raises(RuntimeError, match="empty"):
        s.pop()


def test_write_stream_drains_to_memory():
    mem, tcdm, s = make_streamer()
    arm_write(s, 0x200, 4)
    values = [1.5, -2.5, 3.5, 4.5]
    pushed = 0
    for _ in range(40):
        if pushed < 4 and s.can_push():
            s.push(values[pushed])
            pushed += 1
        tick(s, tcdm)
    assert s.done
    assert list(mem.read_array(0x200, (4,))) == values


def test_write_stream_strided():
    mem, tcdm, s = make_streamer()
    arm_write(s, 0x200, 3, stride=16)
    for v in (1.0, 2.0, 3.0):
        while not s.can_push():
            tick(s, tcdm)
        s.push(v)
        tick(s, tcdm)
    for _ in range(20):
        tick(s, tcdm)
    assert mem.read_f64(0x200) == 1.0
    assert mem.read_f64(0x210) == 2.0
    assert mem.read_f64(0x220) == 3.0


def test_push_full_fifo_raises():
    mem, tcdm, s = make_streamer(fifo_depth=2)
    arm_write(s, 0x200, 8)
    s.push(1.0)
    s.push(2.0)
    assert not s.can_push()
    with pytest.raises(RuntimeError, match="full"):
        s.push(3.0)


def test_indirect_read_gathers():
    mem, tcdm, s = make_streamer()
    data = np.arange(16, dtype=np.float64) * 10
    idx = np.array([3, 0, 7, 7, 1], dtype=np.uint32)
    mem.write_array(0x400, data)
    mem.write_array(0x100, idx)
    s.write_cfg(CfgField.BASE, 0x400)
    s.write_cfg(CfgField.BOUND0, len(idx))
    s.write_cfg(CfgField.STRIDE0, 0)
    s.write_cfg(CfgField.REPEAT, 0)
    s.write_cfg(CfgField.IDX_BASE, 0x100)
    s.write_cfg(CfgField.IDX_CFG, 2 | (3 << 4))   # 4-byte idx, shift 3
    s.write_cfg(CfgField.CTRL, 2)                 # read + indirect
    out = []
    for _ in range(60):
        tick(s, tcdm)
        while s.can_pop():
            out.append(s.pop())
    assert out == [30.0, 0.0, 70.0, 70.0, 10.0]
    # One index fetch and one data fetch per element.
    assert s.idx_port.reads == 5
    assert s.data_port.reads == 5


def test_reconfig_while_active_raises():
    mem, tcdm, s = make_streamer()
    mem.write_array(0x100, np.zeros(4))
    arm_read(s, 0x100, 4)
    with pytest.raises(RuntimeError, match="active"):
        s.write_cfg(CfgField.BASE, 0x200)


def test_rearm_after_completion():
    mem, tcdm, s = make_streamer()
    mem.write_array(0x100, np.array([1.0]))
    mem.write_array(0x180, np.array([9.0]))
    arm_read(s, 0x100, 1)
    for _ in range(10):
        tick(s, tcdm)
    assert s.pop() == 1.0
    assert s.done
    arm_read(s, 0x180, 1)
    for _ in range(10):
        tick(s, tcdm)
    assert s.pop() == 9.0


def test_cfg_addr_split_roundtrip():
    for ssr in range(3):
        for field in (0, 1, 5, 14, 16):
            assert split_cfg_addr(cfg_addr(ssr, field)) == (ssr, field)


def test_cfgspace_shadow_read_back():
    space = SsrConfigSpace(1)
    space.write(CfgField.BOUND0 + 2, 13, active=False)
    space.write(CfgField.STRIDE0, -24 & 0xFFFFFFFF, active=False)
    space.write(CfgField.BASE, 0x800, active=False)
    assert space.read(CfgField.BOUND0 + 2) == 13
    assert space.read(CfgField.STRIDE0) == -24     # sign restored
    assert space.read(CfgField.BASE) == 0x800


def test_cfgspace_unknown_field():
    space = SsrConfigSpace(0)
    with pytest.raises(ValueError, match="unknown config field"):
        space.write(40, 1, active=False)
