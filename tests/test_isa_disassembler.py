"""Disassembler round-trip tests."""

import pytest

from repro.isa.assembler import assemble
from repro.isa.disassembler import disassemble, disassemble_program, \
    format_instr
from repro.isa.encoding import encode

SAMPLE = """
    addi a0, zero, 5
    lui t0, 16
    add a1, a0, a0
    lw a2, 8(sp)
    sw a2, -4(sp)
    bne a0, a1, -8
    jal ra, 16
    jalr zero, ra, 0
    csrrs t0, mcycle, zero
    csrrwi zero, chain_mask, 8
    fld ft3, 0(a0)
    fsd ft3, 8(a0)
    fadd.d ft3, ft0, ft1
    fmadd.d ft3, ft0, ft4, ft3
    fsqrt.d ft5, ft6
    feq.d a0, ft1, ft2
    fcvt.d.w ft1, a0
    fcvt.w.d a0, ft1
    frep.o t1, 7
    frep.i t1, 3, 2, 5
    scfgw t0, t1
    scfgr t2, t0
    ecall
    ebreak
"""


def test_text_assemble_disassemble_reassemble():
    prog1 = assemble(SAMPLE)
    text = "\n".join(format_instr(i) for i in prog1.instrs)
    prog2 = assemble(text)
    assert prog1.encode_words() == prog2.encode_words()


def test_disassemble_from_word():
    prog = assemble("fadd.d ft3, ft0, ft1")
    word = encode(prog.instrs[0])
    assert disassemble(word) == "fadd.d ft3, ft0, ft1"


def test_disassemble_program():
    words = assemble("addi a0, a0, 1\nebreak").encode_words()
    assert disassemble_program(words) == "addi a0, a0, 1\nebreak"


@pytest.mark.parametrize("line", [
    "fsgnj.d ft1, ft2, ft3",
    "fmin.d ft1, ft2, ft3",
    "flt.d a0, ft1, ft2",
    "srai a0, a1, 3",
    "sltiu a0, a1, 9",
    "auipc t0, 4",
])
def test_individual_roundtrips(line):
    prog = assemble(line)
    word = encode(prog.instrs[0])
    assert disassemble(word) == line
