"""Metrics registry, per-run summaries, campaign aggregation, cache
purity (telemetry never lands in cached records)."""

import json
from types import SimpleNamespace

import pytest

from repro import obs
from repro.api import Session, workload
from repro.obs.metrics import (METRICS, MetricsRegistry, campaign_obs,
                               cluster_run_obs)


@pytest.fixture(autouse=True)
def _clean_metrics():
    METRICS.reset()
    yield
    METRICS.reset()
    obs.disable()


# -- registry -------------------------------------------------------------


def test_counters_gauges_histograms():
    reg = MetricsRegistry()
    reg.inc("cache.hit")
    reg.inc("cache.hit")
    reg.inc("dma.bytes", 512)
    reg.gauge("workers", 4)
    for value in (0.5, 1.5, 1.0):
        reg.observe("sweep.point_seconds", value)
    snap = reg.snapshot()
    assert snap["counters"] == {"cache.hit": 2, "dma.bytes": 512}
    assert snap["gauges"] == {"workers": 4}
    assert snap["histograms"]["sweep.point_seconds"] == {
        "count": 3, "sum": 3.0, "min": 0.5, "max": 1.5}
    reg.reset()
    assert reg.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}


def test_snapshot_is_a_copy():
    reg = MetricsRegistry()
    reg.inc("x")
    snap = reg.snapshot()
    snap["counters"]["x"] = 99
    assert reg.snapshot()["counters"]["x"] == 1


# -- per-run summaries ----------------------------------------------------


def test_cluster_run_obs_from_real_run():
    obs.enable()
    result = Session().run(workload("vecop", "chaining", n=32))
    run_obs = result.meta["obs"]
    assert run_obs["engine"] == "auto"
    assert run_obs["fastpath"]["regions_seen"] >= 1
    assert run_obs["fastpath"]["regions_eligible"] >= 1
    assert METRICS.counters["session.runs"] == 1
    assert METRICS.counters["fastpath.regions"] >= 1


def test_cluster_run_obs_without_fastpath():
    cluster = SimpleNamespace(
        cfg=SimpleNamespace(engine="scalar"),
        ff_stats={"spans": 2, "cycles": 100},
        fastpath=None)
    assert cluster_run_obs(cluster) == {
        "engine": "scalar", "ff_spans": 2, "ff_cycles_skipped": 100}


# -- campaign aggregation -------------------------------------------------


def _outcome(status="ok", cached=False, seconds=0.5, run_obs=None):
    meta = {} if run_obs is None else {"obs": run_obs}
    return SimpleNamespace(status=status, cached=cached, seconds=seconds,
                           result=SimpleNamespace(meta=meta))


def test_campaign_obs_counts_and_rates():
    outcomes = [
        _outcome(run_obs={"ff_spans": 3, "ff_cycles_skipped": 40,
                          "fastpath": {"regions_seen": 2,
                                       "regions_eligible": 1,
                                       "reject_reasons": {
                                           "non-vector-op": 1}}}),
        _outcome(cached=True, seconds=None),
        _outcome(status="error", seconds=0.1),
    ]
    agg = campaign_obs(outcomes, seconds=1.25)
    assert agg["points"] == 3 and agg["ok"] == 2
    assert agg["errors"] == 1 and agg["timeouts"] == 0
    assert agg["cache_hits"] == 1
    assert agg["hit_rate"] == pytest.approx(1 / 3)
    assert agg["ff_spans"] == 3 and agg["ff_cycles_skipped"] == 40
    assert agg["fastpath_regions_seen"] == 2
    assert agg["fastpath_eligibility_rate"] == 0.5
    assert agg["fastpath_reject_reasons"] == {"non-vector-op": 1}
    assert agg["point_seconds"]["count"] == 2


def test_campaign_obs_walks_nested_system_clusters():
    run_obs = {"num_clusters": 2,
               "clusters": [{"ff_spans": 4, "ff_cycles_skipped": 10},
                            {"ff_spans": 6, "ff_cycles_skipped": 30}]}
    agg = campaign_obs([_outcome(run_obs=run_obs)], seconds=0.5)
    assert agg["ff_spans"] == 10
    assert agg["ff_cycles_skipped"] == 40


def test_campaign_obs_empty():
    agg = campaign_obs([], seconds=0.0)
    assert agg["points"] == 0 and agg["hit_rate"] == 0.0
    assert agg["fastpath_eligibility_rate"] == 0.0


# -- cache interaction ----------------------------------------------------


def test_cache_hit_and_miss_metrics(tmp_path):
    obs.enable()
    session = Session(cache=str(tmp_path / "cache"))
    point = workload("vecop", "chaining", n=16)
    first = session.run(point)
    assert METRICS.counters["cache.miss"] == 1
    assert "wall_seconds" in first.meta["obs"]
    second = session.run(point)
    assert METRICS.counters["cache.hit"] == 1
    assert second.cycles == first.cycles


def test_cached_records_never_contain_obs(tmp_path):
    obs.enable()
    session = Session(cache=str(tmp_path / "cache"))
    session.run(workload("vecop", "chaining", n=16))
    obs.disable()
    [shard] = (tmp_path / "cache" / "shards").glob("*.jsonl")
    record = json.loads(shard.read_text().splitlines()[0])
    assert "obs" not in record["result"]["meta"]
    # ... and the record matches one from an unobserved run exactly,
    # wall time aside (the only nondeterministic field).
    shard.unlink()
    session2 = Session(cache=str(tmp_path / "cache"))
    session2.run(workload("vecop", "chaining", n=16))
    [shard2] = (tmp_path / "cache" / "shards").glob("*.jsonl")
    clean = json.loads(shard2.read_text().splitlines()[0])
    record.pop("seconds"), clean.pop("seconds")
    assert clean == record


def test_campaign_summary_surfaces_obs(tmp_path):
    obs.enable()
    session = Session(cache=None, workers=0)
    campaign = session.map([workload("vecop", "chaining", n=16),
                            workload("vecop", "baseline", n=16)])
    summary = campaign.summary()
    assert summary["points"] == 2 and summary["ok"] == 2
    assert summary["hit_rate"] == 0.0
    assert summary["obs"]["fastpath_regions_seen"] >= 1
    assert summary["obs"]["points"] == 2
