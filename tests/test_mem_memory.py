"""Flat memory and allocator tests."""

import numpy as np
import pytest

from repro.mem.memory import Allocator, Memory, MemoryError_


def test_size_validation():
    with pytest.raises(ValueError):
        Memory(0)
    with pytest.raises(ValueError):
        Memory(12)


def test_scalar_roundtrips():
    mem = Memory(1024)
    mem.write_u8(3, 0xAB)
    assert mem.read_u8(3) == 0xAB
    mem.write_u16(10, 0xBEEF)
    assert mem.read_u16(10) == 0xBEEF
    mem.write_u32(16, 0xDEADBEEF)
    assert mem.read_u32(16) == 0xDEADBEEF
    mem.write_u64(24, 0x0123456789ABCDEF)
    assert mem.read_u64(24) == 0x0123456789ABCDEF
    mem.write_f64(32, -1.5)
    assert mem.read_f64(32) == -1.5
    mem.write_f32(40, 2.0)
    assert mem.read_f32(40) == 2.0


def test_wrapping_on_write():
    mem = Memory(64)
    mem.write_u8(0, 0x1FF)
    assert mem.read_u8(0) == 0xFF
    mem.write_u32(4, 1 << 35)
    assert mem.read_u32(4) == 0


def test_misaligned_access_raises():
    mem = Memory(64)
    with pytest.raises(MemoryError_, match="misaligned"):
        mem.read_u32(2)
    with pytest.raises(MemoryError_, match="misaligned"):
        mem.write_f64(4, 1.0)


def test_out_of_range_raises():
    mem = Memory(64)
    with pytest.raises(MemoryError_):
        mem.read_u64(64)
    with pytest.raises(MemoryError_):
        mem.write_u8(-1, 0)


def test_array_roundtrip():
    mem = Memory(4096)
    data = np.arange(32, dtype=np.float64).reshape(4, 8)
    mem.write_array(64, data)
    out = mem.read_array(64, (4, 8))
    assert np.array_equal(out, data)


def test_u32_array_roundtrip():
    mem = Memory(4096)
    data = np.arange(10, dtype=np.uint32)
    mem.write_array(128, data)
    assert np.array_equal(mem.read_array(128, (10,), np.uint32), data)


def test_array_bounds_checked():
    mem = Memory(64)
    with pytest.raises(MemoryError_):
        mem.write_array(32, np.zeros(8))


def test_fill():
    mem = Memory(64)
    mem.fill(8, 16, 0x7F)
    assert mem.read_u8(8) == 0x7F
    assert mem.read_u8(23) == 0x7F
    assert mem.read_u8(24) == 0


def test_little_endian_layout():
    mem = Memory(64)
    mem.write_u32(0, 0x11223344)
    assert mem.read_u8(0) == 0x44
    assert mem.read_u8(3) == 0x11


def test_allocator_alignment_and_bump():
    alloc = Allocator(base=0x10)
    a = alloc.alloc(5)
    b = alloc.alloc(8)
    assert a == 0x10
    assert b % 8 == 0 and b >= a + 5
    c = alloc.alloc_f64(4)
    assert c % 8 == 0
    assert alloc.used == c + 32
