"""Trace recorder and figure renderers."""

from repro.core import Cluster
from repro.kernels.build import MARK_START
from repro.kernels.vecop import VecopVariant, build_vecop
from repro.trace import TraceRecorder, render_dataflow, render_issue_trace


def run_traced_vecop(variant=VecopVariant.CHAINING, n=16,
                     loop_mode="bne"):
    build = build_vecop(n=n, variant=variant, loop_mode=loop_mode)
    trace = TraceRecorder()
    cluster = Cluster(build.asm, trace=trace)
    build.load_into(cluster)
    cluster.run()
    return cluster, trace


def test_events_recorded_for_both_halves():
    cluster, trace = run_traced_vecop()
    assert trace.fp_events
    assert trace.int_events
    kinds = {e.kind for e in trace.fp_events}
    assert "compute" in kinds and "csr" in kinds


def test_fp_events_between():
    cluster, trace = run_traced_vecop()
    start = cluster.perf.marks[MARK_START].cycle
    window = trace.fp_events_between(start, start + 10)
    assert all(start <= e.cycle < start + 10 for e in window)


def test_issue_trace_shows_bubbles_for_baseline():
    cluster, trace = run_traced_vecop(variant=VecopVariant.BASELINE)
    start = cluster.perf.marks[MARK_START].cycle
    text = render_issue_trace(trace, start_cycle=start, max_slots=20)
    lines = text.splitlines()[2:]
    empty = sum(1 for line in lines if line.strip().isdigit())
    busy = sum(1 for line in lines if "fadd" in line or "fmul" in line)
    # Baseline wastes most slots on RAW stalls (Fig. 1a).
    assert empty > busy


def test_issue_trace_dense_for_chaining():
    cluster, trace = run_traced_vecop(variant=VecopVariant.CHAINING,
                                      loop_mode="frep", n=32)
    start = cluster.perf.marks[MARK_START].cycle + 8
    text = render_issue_trace(trace, start_cycle=start, max_slots=16)
    lines = text.splitlines()[2:]
    busy = sum(1 for line in lines if "fadd" in line or "fmul" in line)
    assert busy >= 14


def test_issue_trace_with_int_column():
    _, trace = run_traced_vecop()
    text = render_issue_trace(trace, show_int=True, max_slots=60)
    assert "| int:" in text


def test_dataflow_shows_fifo_fill():
    cluster, trace = run_traced_vecop(loop_mode="frep", n=32)
    start = cluster.perf.marks[MARK_START].cycle
    text = render_dataflow(trace, chain_reg=3, start_cycle=start,
                           max_slots=24)
    assert "fifo" in text.splitlines()[0]
    # The pipe fills to capacity during the fadd group.
    assert "[###|" in text


def test_empty_trace_handled():
    trace = TraceRecorder()
    assert "no FP issue events" in render_issue_trace(trace)
    assert "no FP issue events" in render_dataflow(trace)


def test_int_events_between():
    cluster, trace = run_traced_vecop()
    start = cluster.perf.marks[MARK_START].cycle
    window = trace.int_events_between(start, start + 10)
    assert all(start <= e.cycle < start + 10 for e in window)


def test_events_between_matches_linear_scan():
    """The bisect windows must agree with a naive filter everywhere."""
    cluster, trace = run_traced_vecop(loop_mode="frep", n=32)
    last = trace.fp_events[-1].cycle
    windows = [(0, last + 1), (last // 2, last), (7, 7),
               (last + 5, last + 9), (0, 0)]
    for lo, hi in windows:
        assert trace.fp_events_between(lo, hi) == [
            e for e in trace.fp_events if lo <= e.cycle < hi]
        assert trace.int_events_between(lo, hi) == [
            e for e in trace.int_events if lo <= e.cycle < hi]


def test_events_between_empty_recorder():
    trace = TraceRecorder()
    assert trace.fp_events_between(0, 100) == []
    assert trace.int_events_between(0, 100) == []


def test_issue_trace_int_column_alignment():
    """The int column anchors at column 34 whenever the FP text fits."""
    _, trace = run_traced_vecop()
    text = render_issue_trace(trace, show_int=True, max_slots=60)
    columns = [line.index("| int:") for line in text.splitlines()
               if "| int:" in line]
    assert columns
    assert all(col >= 34 for col in columns)
    for line in text.splitlines():
        if "| int:" in line and len(line.split("| int:")[0].rstrip()) < 33:
            assert line.index("| int:") == 34


def test_issue_trace_show_int_without_int_events():
    _, traced = run_traced_vecop()
    fp_only = TraceRecorder(fp_events=traced.fp_events)
    text = render_issue_trace(fp_only, show_int=True, max_slots=60)
    assert "| int:" not in text
    assert "fmul" in text or "fadd" in text
