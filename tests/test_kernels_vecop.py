"""Vecop (Fig. 1) kernel builder tests."""

import numpy as np
import pytest

from repro.core import CoreConfig
from repro.eval.runner import run_build
from repro.kernels.vecop import VecopVariant, build_vecop


@pytest.mark.parametrize("variant", list(VecopVariant))
@pytest.mark.parametrize("loop_mode", ["frep", "bne"])
def test_all_variants_correct(variant, loop_mode):
    build = build_vecop(n=32, variant=variant, loop_mode=loop_mode)
    result = run_build(build)
    assert result.correct


def test_fig1_utilization_ordering():
    results = {
        v: run_build(build_vecop(n=128, variant=v))
        for v in VecopVariant
    }
    base = results[VecopVariant.BASELINE].fpu_utilization
    unrolled = results[VecopVariant.UNROLLED].fpu_utilization
    chained = results[VecopVariant.CHAINING].fpu_utilization
    # Fig. 1 story: baseline wastes the FPU latency; the other two are
    # near-ideal and equivalent.
    assert base < 0.5
    assert unrolled > 0.9
    assert chained > 0.9
    assert abs(unrolled - chained) < 0.05


def test_baseline_utilization_matches_latency_math():
    # 2 useful ops per (2 + latency) issue slots.
    result = run_build(build_vecop(n=256, variant=VecopVariant.BASELINE))
    assert abs(result.fpu_utilization - 0.4) < 0.05


def test_chaining_uses_one_architectural_register():
    build = build_vecop(n=32, variant=VecopVariant.CHAINING)
    assert build.meta["arch_accumulators"] == 1
    assert "ft4" not in build.asm
    assert "chain_mask, 8" in build.asm


def test_unrolled_uses_four_registers():
    build = build_vecop(n=32, variant=VecopVariant.UNROLLED)
    assert build.meta["arch_accumulators"] == 4
    for reg in ("ft3", "ft4", "ft5", "ft6"):
        assert reg in build.asm


def test_unroll_follows_pipe_depth():
    cfg = CoreConfig(fpu_pipe_depth=2)
    build = build_vecop(n=30, variant=VecopVariant.UNROLLED, cfg=cfg)
    assert build.meta["unroll"] == 3


def test_bad_n_rejected():
    with pytest.raises(ValueError, match="multiple"):
        build_vecop(n=30, variant=VecopVariant.CHAINING)


def test_bad_loop_mode_rejected():
    with pytest.raises(ValueError, match="loop_mode"):
        build_vecop(n=32, loop_mode="while")


def test_golden_matches_numpy():
    build = build_vecop(n=64, seed=123, scalar=1.5)
    c = build.arrays[1][1]
    d = build.arrays[2][1]
    assert np.array_equal(build.golden, (c + d) * 1.5)
