"""Workload: validation, canonical form, and cache-key compatibility.

The goldens in ``tests/data/cache_key_goldens.json`` were captured from
the **pre-redesign** code (v1.4.0, when the expansion unit was still
``repro.sweep.spec.Point``): every canonical dict and SHA-256 cache key
in there is what the old code produced.  The tests prove the unified
:class:`repro.api.Workload` reproduces them bit-for-bit, so caches
written before the API unification still hit.
"""

import json
from pathlib import Path

import pytest

from repro.api import Workload, make_workload, workload
from repro.core.config import CoreConfig
from repro.kernels.layout import Grid3d
from repro.sweep.cache import point_key
from repro.sweep.presets import scaling_points

GOLDENS = json.loads(
    (Path(__file__).parent / "data" / "cache_key_goldens.json")
    .read_text())

#: The arguments the golden "extra" workloads were built from (same
#: order as in the goldens file) -- proves the validating constructor
#: normalizes to the identical canonical form, not just from_canonical.
EXTRA_ARGS = [
    dict(kernel="vecop", variant="chaining", n=64, loop_mode="frep"),
    dict(kernel="vecop", variant="baseline", n=128),
    dict(kernel="box3d1r", variant="Base", grid=(2, 3, 8), unroll=2,
         overrides={"tcdm_banks": 16, "engine": "scalar-v2"}),
    dict(kernel="j3d27pt", variant="Chaining+", grid=(4, 4, 8),
         system={"num_clusters": 2, "iters": 2, "gmem_latency": 100,
                 "link_bytes_per_cycle": 32}),
    dict(kernel="vecop", variant="unrolled", n=24,
         overrides={"fpu_depth": 2}),
]


def test_scaling_preset_canonical_and_keys_match_pre_redesign():
    points = scaling_points()
    assert len(points) == len(GOLDENS["scaling"])
    version = GOLDENS["version"]
    for point, golden in zip(points, GOLDENS["scaling"]):
        assert point.canonical() == golden["canonical"]
        assert point_key(point, version) == golden["key"]


def test_constructed_workloads_reproduce_pre_redesign_keys():
    version = GOLDENS["version"]
    base_cfg = CoreConfig(fp_queue_depth=8)
    for args, golden in zip(EXTRA_ARGS, GOLDENS["extra"]):
        w = make_workload(**args)
        assert w.canonical() == golden["canonical"]
        assert point_key(w, version) == golden["key"]
        assert point_key(w, version, engine="fast") == \
            golden["key_engine_fast"]
        assert point_key(w, version, base_cfg=base_cfg) == \
            golden["key_base_cfg"]


def test_from_canonical_round_trips_the_goldens():
    for golden in GOLDENS["scaling"] + GOLDENS["extra"]:
        w = Workload.from_canonical(golden["canonical"])
        assert w.canonical() == golden["canonical"]


def test_engine_keyword_folds_into_overrides():
    w = workload("box3d1r", "Chaining+", engine="scalar-v2")
    assert w.engine == "scalar-v2"
    assert dict(w.overrides)["engine"] == "scalar-v2"
    same = workload("box3d1r", "Chaining+",
                    overrides={"engine": "scalar-v2"})
    assert w == same and w.canonical() == same.canonical()
    with pytest.raises(ValueError, match="conflicting engines"):
        workload("box3d1r", "Chaining+", engine="fast",
                 overrides={"engine": "scalar"})
    with pytest.raises(ValueError, match="engine must be"):
        workload("box3d1r", "Chaining+", engine="warp")


def test_system_keywords_fold_into_system_axes():
    w = workload("box3d1r", "Chaining+", grid=(4, 4, 8),
                 num_clusters=2, iters=3)
    same = workload("box3d1r", "Chaining+", grid=(4, 4, 8),
                    system={"num_clusters": 2, "iters": 3})
    assert w == same and w.is_system
    assert w.num_clusters == 2 and w.iters == 3
    with pytest.raises(ValueError, match="conflicting num_clusters"):
        workload("box3d1r", "Chaining+", num_clusters=2,
                 system={"num_clusters": 4})


def test_workload_validation_mirrors_make_point():
    with pytest.raises(ValueError, match="unknown kernel"):
        workload("nope", "Base")
    with pytest.raises(ValueError, match="unknown variant"):
        workload("box3d1r", "Turbo")
    with pytest.raises(ValueError, match="grid/unroll"):
        workload("vecop", "chaining", grid=(2, 3, 8))
    with pytest.raises(ValueError, match="n/loop_mode"):
        workload("box3d1r", "Base", n=64)
    with pytest.raises(ValueError, match="system axes"):
        workload("vecop", "chaining", num_clusters=2)
    with pytest.raises(ValueError, match="unknown system axis"):
        workload("box3d1r", "Base", system={"clusters": 2})


def test_grid3d_and_label_survive_the_move():
    w = workload("box3d1r", "Chaining+", grid=Grid3d(2, 3, 8))
    assert w.grid == (2, 3, 8)
    assert w.grid3d() == Grid3d(2, 3, 8)
    assert w.label.startswith("box3d1r/Chaining+ 2x3x8")


def test_point_alias_is_deprecated_but_identical():
    with pytest.deprecated_call():
        from repro.sweep.spec import Point
    assert Point is Workload
    with pytest.deprecated_call():
        from repro.sweep import Point as SweepPoint
    assert SweepPoint is Workload
    import repro
    with pytest.deprecated_call():
        assert repro.Point is Workload
