"""Register-budget tests: the paper's register-pressure story."""

import pytest

from repro.kernels.regalloc import plan_registers
from repro.kernels.variants import Variant


def test_base_variants_spill_with_27_taps():
    # 29 usable regs - 4 accumulators - 2 temps = 23 resident -> 4 spills.
    for variant in (Variant.BASE_MM, Variant.BASE_M):
        plan = plan_registers(variant, ntaps=27, unroll=4)
        assert plan.resident_coeffs == 23
        assert len(plan.spilled_taps) == 4
        assert plan.spilled_taps == (23, 24, 25, 26)
        assert len(plan.temp_regs) == 2


def test_base_streams_coefficients_no_registers():
    plan = plan_registers(Variant.BASE, ntaps=27, unroll=4)
    assert plan.resident_coeffs == 0
    assert not plan.spilled_taps
    assert plan.chain_mask == 0


def test_chaining_fits_all_27_coefficients():
    # The headline register-pressure result: a single chaining
    # accumulator frees enough registers for every coefficient.
    plan = plan_registers(Variant.CHAINING, ntaps=27, unroll=4)
    assert plan.resident_coeffs == 27
    assert not plan.spilled_taps
    assert len(set(plan.acc_regs)) == 1
    assert plan.chain_mask == 1 << plan.acc_regs[0]


def test_chaining_plus_same_registers():
    plan = plan_registers(Variant.CHAINING_PLUS, ntaps=27, unroll=4)
    assert plan.resident_coeffs == 27
    assert plan.chain_reg is not None


def test_chaining_requires_matching_unroll():
    with pytest.raises(ValueError, match="unroll == fpu_depth \\+ 1"):
        plan_registers(Variant.CHAINING, ntaps=27, unroll=8)


def test_chaining_unroll_follows_pipe_depth():
    plan = plan_registers(Variant.CHAINING, ntaps=27, unroll=6, fpu_depth=5)
    assert len(plan.acc_regs) == 6
    assert len(set(plan.acc_regs)) == 1


def test_chaining_overflow_detected():
    # More coefficients than even chaining can hold: refuse loudly.
    with pytest.raises(ValueError, match="register-resident"):
        plan_registers(Variant.CHAINING, ntaps=40, unroll=4)


def test_small_stencils_never_spill():
    for variant in Variant:
        plan = plan_registers(variant, ntaps=7, unroll=4)
        assert not plan.spilled_taps


def test_no_register_overlaps():
    for variant in Variant:
        plan = plan_registers(variant, ntaps=27, unroll=4)
        accs = set(plan.acc_regs)
        coeffs = set(plan.coeff_regs.values())
        temps = set(plan.temp_regs)
        assert not accs & coeffs
        assert not accs & temps
        assert not coeffs & temps
        # Stream registers f0-f2 are never allocated.
        assert all(r >= 3 for r in accs | coeffs | temps)


def test_describe_mentions_variant():
    plan = plan_registers(Variant.CHAINING, ntaps=27, unroll=4)
    text = plan.describe()
    assert "Chaining" in text
    assert "27/27" in text
