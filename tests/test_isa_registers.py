"""Register name table tests."""

import pytest

from repro.isa.registers import (
    FP_REG_NAMES,
    INT_REG_NAMES,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_SSRS,
    fp_reg,
    fp_reg_name,
    int_reg,
    int_reg_name,
    is_ssr_reg,
)


def test_table_sizes():
    assert len(INT_REG_NAMES) == NUM_INT_REGS == 32
    assert len(FP_REG_NAMES) == NUM_FP_REGS == 32


def test_int_abi_names_roundtrip():
    for num in range(NUM_INT_REGS):
        assert int_reg(int_reg_name(num)) == num


def test_fp_abi_names_roundtrip():
    for num in range(NUM_FP_REGS):
        assert fp_reg(fp_reg_name(num)) == num


def test_numeric_names():
    assert int_reg("x0") == 0
    assert int_reg("x31") == 31
    assert fp_reg("f0") == 0
    assert fp_reg("f31") == 31


def test_well_known_aliases():
    assert int_reg("zero") == 0
    assert int_reg("ra") == 1
    assert int_reg("sp") == 2
    assert int_reg("fp") == 8      # alias of s0
    assert int_reg("s0") == 8
    assert int_reg("a0") == 10
    assert int_reg("t6") == 31


def test_fp_well_known():
    assert fp_reg("ft0") == 0
    assert fp_reg("ft7") == 7
    assert fp_reg("fs0") == 8
    assert fp_reg("fa0") == 10
    assert fp_reg("ft8") == 28
    assert fp_reg("ft11") == 31


def test_unknown_register_raises():
    with pytest.raises(ValueError):
        int_reg("x32")
    with pytest.raises(ValueError):
        int_reg("ft0")
    with pytest.raises(ValueError):
        fp_reg("a0")


def test_ssr_registers_are_the_first_three():
    assert NUM_SSRS == 3
    assert [is_ssr_reg(i) for i in range(5)] == [True, True, True, False,
                                                 False]
