"""Campaign audit and backfill: every gap class, coverage roll-ups,
plan ordering, retry budgets, and the resume property (backfill makes
any campaign complete)."""

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import __version__
from repro.api import Session
from repro.sweep import SweepSpec
from repro.sweep.audit import (
    AUDIT_AXES,
    AUDIT_SCHEMA,
    BACKFILL_ORDER,
    GAP_CLASSES,
    BackfillPlan,
    audit_campaign,
)
from repro.sweep.cache import ResultCache, point_key
from repro.sweep.runner import execute_point
from repro.sweep.spec import make_point

DATA = Path(__file__).parent / "data"


def seed_ok(cache, point, version=__version__):
    """Simulate one point and store it exactly as a sweep would."""
    key = point_key(point, version)
    cache.put(key, point, execute_point(point), 0.0, version)
    return key


def seed_pre15(cache, point, version=__version__):
    """Store a record whose result payload predates the canonical
    schema (no ``schema`` stamp), as a 1.4-era store would hold."""
    key = point_key(point, version)
    record = {"key": key, "version": version, "point": point.canonical(),
              "seconds": 0.0,
              "result": {"name": point.label, "correct": True,
                         "cycles": 100}}
    cache._append(cache._shard_path(key), record)
    return key


def seed_analytical(cache, point, version=__version__):
    """Store an analytical estimate under the point's CYCLE-fidelity
    key (as a hand-merged or copied store could), which the audit's
    fidelity gate must refuse to count as ok."""
    from repro.analytical.model import estimate_workload
    key = point_key(point, version)
    cache.put(key, point, estimate_workload(point), 0.0, version)
    return key


# -- classification, one class at a time ----------------------------------


def test_empty_campaign_is_complete(tmp_path):
    audit = audit_campaign([], ResultCache(tmp_path / "c"))
    assert audit.total == 0
    assert audit.coverage == 1.0 and audit.complete
    assert audit.gaps == []


def test_ok_and_missing(tmp_path):
    cache = ResultCache(tmp_path / "c")
    done = make_point("vecop", "chaining", n=16)
    todo = make_point("vecop", "baseline", n=16)
    seed_ok(cache, done)
    audit = audit_campaign([done, todo], cache)
    by_label = {a.point.label: a for a in audit}
    assert by_label[done.label].status == "ok"
    assert by_label[todo.label].status == "missing"
    assert audit.coverage == 0.5 and not audit.complete
    assert [a.point for a in audit.gaps] == [todo]


def test_error_and_timeout_come_from_the_failure_log(tmp_path):
    cache = ResultCache(tmp_path / "c")
    err = make_point("vecop", "chaining", n=16)
    slow = make_point("vecop", "baseline", n=16)
    key_err = point_key(err, __version__)
    key_slow = point_key(slow, __version__)
    cache.put_failure(key_err, err, "error",
                      "Traceback ...\nValueError: boom", 0.1, __version__)
    cache.put_failure(key_err, err, "error",
                      "Traceback ...\nValueError: boom", 0.1, __version__)
    cache.put_failure(key_slow, slow, "timeout", None, 60.0, __version__)

    audit = audit_campaign([err, slow], ResultCache(tmp_path / "c"))
    by_label = {a.point.label: a for a in audit}
    assert by_label[err.label].status == "error"
    assert by_label[err.label].attempts == 2     # cumulative, reloaded
    assert by_label[err.label].detail == "ValueError: boom"
    assert by_label[slow.label].status == "timeout"
    assert by_label[slow.label].attempts == 1


def test_success_supersedes_a_recorded_failure(tmp_path):
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    key = point_key(point, __version__)
    cache.put_failure(key, point, "error", "flaky", 0.1, __version__)
    seed_ok(cache, point)
    audit = audit_campaign([point], ResultCache(tmp_path / "c"))
    assert audit.points[0].status == "ok"


def test_stale_version_record_is_found_by_canonical_match(tmp_path):
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    seed_ok(cache, point, version="0.0.1")   # keyed under the old era
    audit = audit_campaign([point], cache)
    assert audit.points[0].status == "stale-version"
    assert "0.0.1" in audit.points[0].detail
    # The reported key is the CURRENT one: a backfill re-keys the point.
    assert audit.points[0].key == point_key(point, __version__)


def test_stale_schema_beats_stale_version(tmp_path):
    cache = ResultCache(tmp_path / "c")
    direct = make_point("vecop", "chaining", n=16)
    via_canonical = make_point("vecop", "baseline", n=16)
    seed_pre15(cache, direct)                       # current key
    seed_pre15(cache, via_canonical, version="0.0.1")  # old key
    audit = audit_campaign([direct, via_canonical],
                           ResultCache(tmp_path / "c"))
    assert [a.status for a in audit] == ["stale-schema", "stale-schema"]
    assert "pre-1.5" in audit.points[0].detail


def test_same_version_other_context_is_missing_not_stale(tmp_path):
    """A record computed under the same version but a different engine
    context has a different key: for THIS campaign the point was never
    run, so it is missing, not stale."""
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    key_scalar = point_key(point, __version__, engine="scalar")
    cache.put(key_scalar, point, execute_point(point), 0.0, __version__)
    audit = audit_campaign([point], cache)   # engine context: auto
    assert audit.points[0].status == "missing"


def test_analytical_record_is_stale_fidelity_at_cycle_context(tmp_path):
    """A campaign audited at cycle fidelity never counts an analytical
    record as ok -- it lands in the stale-fidelity class."""
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    seed_analytical(cache, point)
    audit = audit_campaign([point], cache)   # engine context: auto
    assert audit.points[0].status == "stale-fidelity"
    assert "analytical" in audit.points[0].detail
    assert not audit.complete
    # Backfill repairs it: the class is part of the execution order.
    assert "stale-fidelity" in BACKFILL_ORDER
    plan = BackfillPlan(audit)
    assert [e.point for e in plan.entries] == [point]


def test_cycle_record_is_stale_fidelity_at_analytical_context(tmp_path):
    """The reverse direction: a cycle-accurate record where the
    campaign expects estimates is flagged, not silently served."""
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    key = point_key(point, __version__, engine="analytical")
    cache.put(key, point, execute_point(point), 0.0, __version__)
    audit = audit_campaign([point], cache, engine="analytical")
    assert audit.points[0].status == "stale-fidelity"
    assert "expects 'analytical'" in audit.points[0].detail


def test_analytical_campaign_audits_its_own_records_ok(tmp_path):
    """Estimates cached by an analytical session are ok *in that
    session's own context* -- the gate flags mismatches only."""
    session = Session(cache=str(tmp_path / "c"), engine="analytical",
                      workers=0)
    point = make_point("vecop", "chaining", n=16)
    session.map([point])
    audit = session.audit([point])
    assert audit.points[0].status == "ok" and audit.complete
    # The very same store audited at cycle fidelity has no record under
    # the cycle key at all (the engine is a key ingredient): missing.
    cycle = Session(cache=str(tmp_path / "c"), workers=0)
    assert cycle.audit([point]).points[0].status == "missing"


def test_corrupt_store_lines_surface_in_the_audit(tmp_path):
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    seed_ok(cache, point)
    [shard] = (tmp_path / "c" / "shards").glob("*.jsonl")
    with open(shard, "a") as handle:
        handle.write('{"key": "torn-tail...')
    with pytest.warns(UserWarning, match="1 malformed JSONL line"):
        reopened = ResultCache(tmp_path / "c")
    audit = audit_campaign([point], reopened)
    assert audit.corrupt_lines == 1
    assert audit.to_dict()["corrupt_lines"] == 1
    assert audit.points[0].status == "ok"    # the good record survives


# -- roll-ups -------------------------------------------------------------


def test_counts_always_list_every_class(tmp_path):
    audit = audit_campaign([make_point("vecop", "chaining", n=16)],
                           ResultCache(tmp_path / "c"))
    counts = audit.counts()
    assert tuple(counts) == GAP_CLASSES
    assert counts["missing"] == 1
    assert sum(counts.values()) == 1


def test_by_axis_coverage_table(tmp_path):
    cache = ResultCache(tmp_path / "c")
    done = make_point("vecop", "chaining", n=16)
    seed_ok(cache, done)
    points = [done,
              make_point("vecop", "chaining", n=32),
              make_point("vecop", "baseline", n=16)]
    audit = audit_campaign(points, cache)
    variants = audit.by_axis("variant")
    assert variants["chaining"] == {"ok": 1, "total": 2, "coverage": 0.5}
    assert variants["baseline"] == {"ok": 0, "total": 1, "coverage": 0.0}
    assert set(audit.axes()) == set(AUDIT_AXES)
    with pytest.raises(ValueError, match="unknown audit axis"):
        audit.by_axis("grid")


def test_audit_report_shape(tmp_path):
    spec = SweepSpec(name="shape", kernels=("vecop",),
                     variants=("baseline",), ns=(16, 32))
    report = audit_campaign(spec, ResultCache(tmp_path / "c")).to_dict()
    assert report["schema"] == AUDIT_SCHEMA
    assert report["campaign"] == "shape"
    assert report["total"] == 2 and report["coverage"] == 0.0
    assert len(report["gaps"]) == len(report["points"]) == 2
    for row in report["gaps"]:
        assert set(row) == {"label", "point", "key", "status", "detail",
                            "attempts"}


def test_golden_audit_report(tmp_path):
    """One campaign exercising every gap class, pinned byte-for-byte
    (version fixed, so keys and the whole report are deterministic)."""
    version = "9.9.9"
    cache = ResultCache(tmp_path / "c")
    p_ok = make_point("vecop", "chaining", n=16)
    p_missing = make_point("vecop", "baseline", n=16)
    p_stale = make_point("vecop", "chaining", n=32)
    p_schema = make_point("vecop", "unrolled", n=16)
    p_error = make_point("vecop", "baseline", n=32)
    p_timeout = make_point("vecop", "unrolled", n=32)
    p_fidelity = make_point("vecop", "baseline", n=48)
    seed_ok(cache, p_ok, version=version)
    seed_ok(cache, p_stale, version="1.0.0")
    seed_pre15(cache, p_schema, version=version)
    seed_analytical(cache, p_fidelity, version=version)
    key_err = point_key(p_error, version)
    cache.put_failure(key_err, p_error, "error",
                      "Traceback (most recent call last):\n"
                      "ValueError: boom", 0.5, version)
    cache.put_failure(key_err, p_error, "error",
                      "Traceback (most recent call last):\n"
                      "ValueError: boom", 0.5, version)
    cache.put_failure(point_key(p_timeout, version), p_timeout,
                      "timeout", None, 60.0, version)

    audit = audit_campaign(
        [p_ok, p_missing, p_stale, p_schema, p_error, p_timeout,
         p_fidelity],
        ResultCache(tmp_path / "c"), version=version, name="golden-audit")
    golden = json.loads((DATA / "audit_golden.json").read_text())
    assert audit.to_dict() == golden


# -- backfill plans -------------------------------------------------------


def _gapped_store(root):
    """A store where one spec point is in every non-ok class."""
    cache = ResultCache(root)
    points = {
        "ok": make_point("vecop", "chaining", n=16),
        "missing": make_point("vecop", "baseline", n=16),
        "stale-version": make_point("vecop", "chaining", n=32),
        "stale-schema": make_point("vecop", "unrolled", n=16),
        "error": make_point("vecop", "baseline", n=32),
        "timeout": make_point("vecop", "unrolled", n=32),
        "stale-fidelity": make_point("vecop", "baseline", n=48),
    }
    seed_ok(cache, points["ok"])
    seed_ok(cache, points["stale-version"], version="0.0.1")
    seed_pre15(cache, points["stale-schema"])
    seed_analytical(cache, points["stale-fidelity"])
    cache.put_failure(point_key(points["error"], __version__),
                      points["error"], "error", "boom", 0.1, __version__)
    cache.put_failure(point_key(points["timeout"], __version__),
                      points["timeout"], "timeout", None, 60.0,
                      __version__)
    return points


def test_backfill_order_groups_by_class(tmp_path):
    points = _gapped_store(tmp_path / "c")
    # Spec order deliberately scrambled; the plan regroups it.
    audit = audit_campaign(
        [points["error"], points["timeout"], points["stale-fidelity"],
         points["stale-schema"], points["ok"], points["stale-version"],
         points["missing"]],
        ResultCache(tmp_path / "c"))
    plan = BackfillPlan(audit)
    assert [e.status for e in plan.entries] == list(BACKFILL_ORDER)
    assert points["ok"] not in plan.points
    assert len(plan) == 6 and not plan.abandoned
    report = plan.to_dict()
    assert report["schema"] == "repro-backfill/v1"
    assert report["planned"] == 6 and report["abandoned"] == []


def test_retry_budget_abandons_persistent_failures(tmp_path):
    cache = ResultCache(tmp_path / "c")
    flaky = make_point("vecop", "chaining", n=16)
    key = point_key(flaky, __version__)
    for _ in range(3):
        cache.put_failure(key, flaky, "error", "boom", 0.1, __version__)
    audit = audit_campaign([flaky], cache)
    assert audit.points[0].attempts == 3

    stop = BackfillPlan(audit, retry_budget=3)
    assert stop.entries == [] and len(stop.abandoned) == 1
    assert "abandoned" in stop.describe()
    assert stop.to_dict()["abandoned"][0]["attempts"] == 3

    more = BackfillPlan(audit, retry_budget=4)   # budget not yet spent
    assert len(more.entries) == 1 and not more.abandoned

    with pytest.raises(ValueError, match="retry_budget"):
        BackfillPlan(audit, retry_budget=0)


def test_dry_plan_on_complete_campaign_says_nothing_to_do(tmp_path):
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    seed_ok(cache, point)
    plan = BackfillPlan(audit_campaign([point], cache))
    assert len(plan) == 0
    assert "nothing to do" in plan.describe()


# -- session integration --------------------------------------------------


def test_session_audit_requires_a_cache():
    with pytest.raises(ValueError, match="requires a result cache"):
        Session(cache=None).audit([])


def test_session_backfill_simulates_only_the_gaps(tmp_path):
    spec = SweepSpec(name="resume", kernels=("vecop",),
                     variants=("baseline", "chaining"), ns=(16, 32))
    session = Session(cache=str(tmp_path / "c"), workers=0)
    # Interrupted campaign: only half the points ever ran.
    session.map(spec.points()[:2])

    audit = session.audit(spec)
    assert audit.counts()["missing"] == 2 and audit.coverage == 0.5

    plan, campaign = session.backfill(audit)
    assert len(plan.points) == 2
    assert campaign.cached_count == 0        # gaps only, nothing warm
    assert campaign.ok_count == 2
    assert session.audit(spec).complete


def test_session_backfill_accepts_a_spec_directly(tmp_path):
    spec = SweepSpec(name="direct", kernels=("vecop",),
                     variants=("chaining",), ns=(16,))
    session = Session(cache=str(tmp_path / "c"), workers=0)
    plan, campaign = session.backfill(spec)
    assert len(plan.points) == 1 and campaign.ok_count == 1
    # Second backfill of a complete campaign is a no-op.
    plan2, campaign2 = session.backfill(spec)
    assert plan2.points == [] and len(campaign2.outcomes) == 0


def test_backfill_rekeys_stale_points(tmp_path):
    cache = ResultCache(tmp_path / "c")
    point = make_point("vecop", "chaining", n=16)
    seed_ok(cache, point, version="0.0.1")
    session = Session(cache=str(tmp_path / "c"), workers=0)
    audit = session.audit([point])
    assert audit.points[0].status == "stale-version"
    session.backfill(audit)
    fresh = ResultCache(tmp_path / "c")
    record = fresh.get_record(point_key(point, __version__))
    assert record is not None and record["version"] == __version__


# -- the resume property --------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(ns=st.lists(st.sampled_from([16, 32, 48, 64]),
                   min_size=1, max_size=3, unique=True),
       done=st.integers(min_value=0, max_value=5))
def test_backfill_then_audit_is_always_complete(ns, done):
    """backfill(audit(spec)) -> audit(spec).coverage == 1.0 for any
    spec and any partially-completed store."""
    spec = SweepSpec(name="prop", kernels=("vecop",),
                     variants=("baseline", "chaining"), ns=tuple(ns))
    points = spec.points()
    with tempfile.TemporaryDirectory() as root:
        session = Session(cache=root, workers=0)
        session.map(points[:done % (len(points) + 1)])
        session.backfill(spec)
        final = session.audit(spec)
        assert final.complete and final.coverage == 1.0
