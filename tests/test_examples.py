"""Smoke tests: every example script runs and reports success.

The two heaviest sweeps (stencil_evaluation, pipeline_depth_sweep) are
exercised indirectly by the benchmarks; here they only need to import.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", [
    "quickstart",
    "dataflow_trace",
    "custom_stencil",
    "dma_double_buffering",
    "linalg_reductions",
    "multicore_stencil",
    "multicluster_scaling",
    "campaign_audit",
    "serve_quickstart",
])
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"
    assert "NO" not in out.split()     # correctness column never 'NO'


@pytest.mark.parametrize("name", [
    "stencil_evaluation",
    "pipeline_depth_sweep",
])
def test_heavy_examples_importable(name):
    module = load_example(name)
    assert callable(module.main)


def test_quickstart_shows_the_papers_story(capsys):
    module = load_example("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "baseline" in out and "chaining" in out
    # Chaining row reports a single accumulator.
    chaining_line = next(line for line in out.splitlines()
                         if line.startswith("chaining"))
    assert " 1 " in chaining_line
