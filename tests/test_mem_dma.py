"""DMA engine tests: unit level and through the Xdma instructions."""

import numpy as np
import pytest

from repro.core import Cluster
from repro.mem.dma import DmaEngine
from repro.mem.memory import Memory


def make_dma(bpc=64):
    mem = Memory(1 << 16)
    return mem, DmaEngine(mem, bytes_per_cycle=bpc)


def test_1d_copy():
    mem, dma = make_dma()
    data = np.arange(32, dtype=np.float64)
    mem.write_array(0x100, data)
    dma.set_src(0x100)
    dma.set_dst(0x800)
    txid = dma.start(32 * 8)
    assert txid == 1
    while not dma.idle:
        dma.step()
    assert np.array_equal(mem.read_array(0x800, (32,)), data)
    assert dma.bytes_moved == 256


def test_bandwidth_bounds_duration():
    mem, dma = make_dma(bpc=16)
    mem.fill(0x100, 256, 0xAA)
    dma.set_src(0x100)
    dma.set_dst(0x800)
    dma.start(256)
    cycles = 0
    while not dma.idle:
        dma.step()
        cycles += 1
    assert cycles == 256 // 16


def test_2d_strided_copy():
    # Gather 4 rows of 16 bytes out of a 64-byte-pitch region.
    mem, dma = make_dma()
    for row in range(4):
        mem.fill(0x100 + row * 64, 16, row + 1)
    dma.set_src(0x100)
    dma.set_dst(0x800)
    dma.set_strides(64, 16)
    dma.set_reps(4)
    dma.start(16)
    while not dma.idle:
        dma.step()
    for row in range(4):
        assert mem.read_u8(0x800 + row * 16) == row + 1
    assert dma.bytes_moved == 64


def test_queueing_in_order():
    mem, dma = make_dma(bpc=8)
    mem.fill(0x100, 8, 1)
    mem.fill(0x200, 8, 2)
    dma.set_src(0x100)
    dma.set_dst(0x800)
    dma.start(8)
    dma.set_src(0x200)
    dma.set_dst(0x808)
    dma.start(8)
    assert dma.outstanding() == 2
    while not dma.idle:
        dma.step()
    assert mem.read_u8(0x800) == 1
    assert mem.read_u8(0x808) == 2
    assert dma.transfers_completed == 2


def test_queue_depth_enforced():
    mem, dma = make_dma()
    dma.queue_depth = 1
    dma.set_src(0x100)
    dma.set_dst(0x800)
    dma.start(8)
    with pytest.raises(RuntimeError, match="queue full"):
        dma.start(8)


def test_validation():
    mem, dma = make_dma()
    with pytest.raises(ValueError):
        dma.set_reps(0)
    with pytest.raises(ValueError):
        dma.start(0)


def test_xdma_instructions_end_to_end():
    prog = """
    li t0, 0x2000
    dmsrc t0
    li t0, 0x4000
    dmdst t0
    li t1, 256
    dmcpy a0, t1
wait:
    dmstat a1
    bnez a1, wait
    li t6, 0x5000
    sw a0, 0(t6)
    ebreak
"""
    cluster = Cluster(prog)
    data = np.arange(32, dtype=np.float64)
    cluster.load_f64(0x2000, data)
    cluster.run()
    assert np.array_equal(cluster.read_f64(0x4000, (32,)), data)
    assert cluster.mem.read_u32(0x5000) == 1   # txid


def test_xdma_2d_instructions():
    prog = """
    li t0, 0x2000
    dmsrc t0
    li t0, 0x4000
    dmdst t0
    li t1, 128
    li t2, 64
    dmstr t1, t2
    li t1, 3
    dmrep t1
    li t1, 64
    dmcpy a0, t1
wait:
    dmstat a1
    bnez a1, wait
    ebreak
"""
    cluster = Cluster(prog)
    for row in range(3):
        cluster.load_f64(0x2000 + 128 * row,
                         np.full(8, float(row + 1)))
    cluster.run()
    for row in range(3):
        out = cluster.read_f64(0x4000 + 64 * row, (8,))
        assert np.array_equal(out, np.full(8, float(row + 1)))


def test_dma_overlaps_with_compute():
    # Issue a long DMA, compute while it runs, then wait: the total
    # runtime is close to max(dma, compute), not the sum.
    prog = """
    li t0, 0x8000
    dmsrc t0
    li t0, 0xC000
    dmdst t0
    li t1, 4096
    dmcpy a0, t1
    li a2, 0x2000
    fld fa0, 0(a2)
    li t2, 63
    frep.o t2, 3
    fmul.d fa1, fa0, fa0
    fmul.d fa2, fa0, fa0
    fmul.d fa3, fa0, fa0
    fmul.d fa4, fa0, fa0
wait:
    dmstat a1
    bnez a1, wait
    ebreak
"""
    cluster = Cluster(prog)
    cluster.mem.write_f64(0x2000, 1.5)
    cluster.run()
    # 4096B at 64B/cycle = 64 DMA cycles; 256 compute ops ~ 256 cycles;
    # overall must be far below the 320+ cycles of serial execution.
    assert cluster.perf.value("fpu_compute_ops") == 256
    assert cluster.dma.bytes_moved == 4096
    assert cluster.cycle < 300


def test_dma_energy_accounted():
    from repro.core import CoreConfig
    from repro.energy.model import EnergyModel

    prog = """
    li t0, 0x2000
    dmsrc t0
    li t0, 0x4000
    dmdst t0
    li t1, 512
    dmcpy a0, t1
wait:
    dmstat a1
    bnez a1, wait
    ebreak
"""
    cluster = Cluster(prog)
    cluster.run()
    report = EnergyModel(CoreConfig()).report(cluster)
    assert report.breakdown["dma"] == pytest.approx(512 * 0.9)
