"""Property-based determinism and liveness of the multi-cluster system.

Three system-level invariants over random small grids/partitions:

* **determinism** -- the simulator is a pure function of its inputs:
  rebuilding and rerunning the same point yields identical per-cluster
  cycle counts and an identical perf-counter digest;
* **permutation invariance** -- which cluster computes which slab is
  timing-irrelevant (the interconnect arbitration is ID-agnostic):
  permuting the tile assignment permutes the per-cluster cycles but
  leaves the multiset (and thus the sum) unchanged, and the output grid
  bit-identical;
* **liveness** -- the barrier protocol never deadlocks on well-formed
  programs (every run completes within a generous cycle bound), and
  when something *does* hang, the failure is diagnosable: the timeout
  carries per-cluster state.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import CoreConfig, SystemConfig
from repro.kernels.layout import Grid3d
from repro.kernels.partition import build_partitioned_stencil
from repro.kernels.registry import get_stencil
from repro.kernels.variants import Variant
from repro.system import System, SystemTimeout

#: Generous per-case budget: the largest generated case finishes well
#: under this, so hitting it means a liveness bug, not a slow case.
MAX_CYCLES = 400_000


@st.composite
def system_cases(draw):
    num_clusters = draw(st.integers(1, 3))
    nz = draw(st.integers(num_clusters, 5))
    ny = draw(st.integers(1, 3))
    nx = 4 * draw(st.integers(1, 3))
    iters = draw(st.integers(1, 2))
    kernel = draw(st.sampled_from(["box3d1r", "star3d1r"]))
    engine = draw(st.sampled_from(["scalar-v2", "auto"]))
    variant = draw(st.sampled_from(["Base", "Chaining+"]))
    gmem_latency = draw(st.sampled_from([0, 5, 40]))
    seed = draw(st.integers(1, 4))
    return (num_clusters, nz, ny, nx, iters, kernel, engine, variant,
            gmem_latency, seed)


def _execute(case, tile_order=None):
    (num_clusters, nz, ny, nx, iters, kernel, engine, variant,
     gmem_latency, seed) = case
    spec, _ = get_stencil(kernel)
    cfg = SystemConfig(num_clusters=num_clusters,
                       core=CoreConfig(engine=engine),
                       gmem_latency=gmem_latency)
    build = build_partitioned_stencil(
        spec, Grid3d(nz, ny, nx), Variant.from_label(variant),
        num_clusters, cfg=cfg, iters=iters, seed=seed,
        tile_order=tile_order)
    system = System(build.asms, cfg)
    build.load_into(system)
    system.run(max_cycles=MAX_CYCLES)  # liveness: must finish in budget
    assert build.check(system), f"{build.name}: output != golden"
    return build.read_output(system), system


@given(system_cases())
@settings(max_examples=12, deadline=None)
def test_same_seed_same_cycles_and_digest(case):
    out_a, sys_a = _execute(case)
    out_b, sys_b = _execute(case)
    assert sys_a.per_cluster_cycles() == sys_b.per_cluster_cycles()
    assert sys_a.perf_digest() == sys_b.perf_digest()
    assert np.array_equal(out_a, out_b)


@given(system_cases(), st.randoms())
@settings(max_examples=10, deadline=None)
def test_cluster_permutation_invariance(case, rng):
    num_clusters = case[0]
    order = list(range(num_clusters))
    rng.shuffle(order)
    out_id, sys_id = _execute(case)
    out_pm, sys_pm = _execute(case, tile_order=order)
    assert np.array_equal(out_id, out_pm)
    id_cycles = sys_id.per_cluster_cycles()
    pm_cycles = sys_pm.per_cluster_cycles()
    # Cluster i now computes slab order[i]: its cycle count must be
    # exactly the identity run's count for that slab's cluster.
    assert pm_cycles == [id_cycles[order[i]]
                        for i in range(num_clusters)]
    assert sum(pm_cycles) == sum(id_cycles)
    assert sys_pm.sys_barriers == sys_id.sys_barriers


def test_hung_cluster_timeout_is_diagnosable():
    """One cluster waits at the system barrier, the other spins forever:
    the timeout must name the barrier state per cluster."""
    waiter = "    csrrwi x0, 0x7C7, 1\n    ebreak\n"
    spinner = "spin:\n    j spin\n    ebreak\n"
    cfg = SystemConfig(num_clusters=2)
    system = System([waiter, spinner], cfg)
    try:
        system.run(max_cycles=3000)
    except SystemTimeout as exc:
        message = str(exc)
        assert "waiting at the system barrier" in message
        assert "cluster 0" in message and "cluster 1" in message
        assert "1/2 cores at the system barrier" in message
    else:
        raise AssertionError("expected a SystemTimeout")


def test_halted_cores_count_as_arrived():
    """A cluster that halts without reaching the barrier must not wedge
    the others (matching the cluster-local barrier semantics)."""
    waiter = "    csrrwi x0, 0x7C7, 1\n    ebreak\n"
    halter = "    ebreak\n"
    system = System([waiter, halter], SystemConfig(num_clusters=2))
    system.run(max_cycles=3000)
    assert system.done
    assert system.sys_barriers == 1
