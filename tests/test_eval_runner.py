"""Runner and figure-harness tests on small configurations."""

import pytest

from repro.eval.figures import (
    PAPER_CLAIMS,
    claims_from_results,
    fig1_data,
    fig3_data,
)
from repro.eval.runner import run_build, run_stencil_variant
from repro.kernels.layout import Grid3d
from repro.kernels.registry import get_stencil, kernel_names
from repro.kernels.variants import VARIANT_ORDER, Variant
from repro.kernels.vecop import build_vecop


def test_run_build_metrics_consistent():
    result = run_build(build_vecop(n=64))
    assert result.correct
    assert result.cycles >= result.region_cycles > 0
    assert 0 < result.fpu_utilization <= 1
    assert result.power_mw > 0
    assert result.gflops > 0
    assert result.gflops_per_watt > 0


def test_run_build_detects_wrong_golden():
    build = build_vecop(n=16)
    build.golden = build.golden + 1.0
    with pytest.raises(AssertionError, match="golden"):
        run_build(build)
    result = run_build(build, require_correct=False)
    assert not result.correct


def test_run_stencil_variant_wrapper(tiny_grid):
    result = run_stencil_variant("box3d1r", Variant.BASE, grid=tiny_grid)
    assert result.correct
    assert result.meta["kernel"] == "box3d1r"
    assert result.cycles_per_point > 0


def test_registry_contents():
    names = kernel_names()
    assert "box3d1r" in names and "j3d27pt" in names
    spec, grid = get_stencil("box3d1r")
    assert spec.ntaps == 27
    assert grid.nx % 4 == 0
    with pytest.raises(KeyError, match="unknown kernel"):
        get_stencil("nope")


def test_fig1_data_shapes():
    data = fig1_data(n=64)
    assert set(data) == {"baseline", "unrolled", "chaining"}
    assert data["baseline"].fpu_utilization < data["chaining"].fpu_utilization


def test_fig3_and_claims_small_grids(small_grid):
    grids = {"box3d1r": small_grid,
             "j3d27pt": Grid3d(nz=2, ny=3, nx=24)}
    results = fig3_data(grids=grids)
    assert len(results) == 10
    for (kernel, label), res in results.items():
        assert res.correct, (kernel, label)

    claims = claims_from_results(results)
    summary = claims.as_dict()
    # Shape assertions (tolerances are wide: tiny grids).
    assert summary["speedup_chaining_plus_vs_base_pct"] > 0
    assert summary["efficiency_chaining_plus_vs_base_pct"] > 0
    assert summary["efficiency_chaining_vs_base_pct"] > 0
    assert summary["min_chaining_utilization"] > 0.85
    assert set(summary) <= set(PAPER_CLAIMS) | {
        "min_chaining_utilization"}


def test_variant_order_is_papers():
    assert [v.label for v in VARIANT_ORDER] == \
        ["Base--", "Base-", "Base", "Chaining", "Chaining+"]
