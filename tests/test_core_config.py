"""Core configuration validation tests."""

import pytest

from repro.core.config import CoreConfig
from repro.isa.instructions import InstrClass


def test_defaults_are_snitch_like():
    cfg = CoreConfig()
    cfg.validate()
    assert cfg.fpu_latency[InstrClass.FP_FMA] == 3
    assert cfg.fpu_pipe_depth == 3
    assert cfg.num_ssrs == 3
    assert cfg.clock_hz == 1.0e9


def test_latency_lookup():
    cfg = CoreConfig()
    assert cfg.fpu_latency_of(InstrClass.FP_DIV) > \
        cfg.fpu_latency_of(InstrClass.FP_FMA)
    with pytest.raises(KeyError):
        cfg.fpu_latency_of(InstrClass.INT_ALU)


@pytest.mark.parametrize("field,value", [
    ("fpu_pipe_depth", 0),
    ("fp_queue_depth", 0),
    ("num_ssrs", 4),
    ("num_ssrs", -1),
    ("ssr_fifo_depth", 0),
])
def test_invalid_configs_rejected(field, value):
    cfg = CoreConfig()
    setattr(cfg, field, value)
    with pytest.raises(ValueError):
        cfg.validate()


def test_invalid_latency_rejected():
    cfg = CoreConfig()
    cfg.fpu_latency = dict(cfg.fpu_latency)
    cfg.fpu_latency[InstrClass.FP_ADD] = 0
    with pytest.raises(ValueError):
        cfg.validate()


def test_configs_independent():
    a = CoreConfig()
    b = CoreConfig()
    a.fpu_latency[InstrClass.FP_ADD] = 9
    assert b.fpu_latency[InstrClass.FP_ADD] == 3
